//! The distributed engine: the paper's Blue Gene mapping on the virtual
//! cluster (§V).
//!
//! Rank 0 is the **Nature Agent**; every other rank owns a contiguous block
//! of SSets and keeps a full local copy of the strategy table ("all nodes
//! need to maintain an up to date view of the strategies assigned to all
//! other SSets", §V-B). One generation drives the three phases of the
//! engine core (`evo_core::engine`, docs/ENGINE_CORE.md):
//!
//! 1. rank 0 computes the [`GenPlan`] and **broadcasts** it over the
//!    collective tree;
//! 2. compute ranks run their owned SSets' games locally — "handled locally
//!    with no communication" (§V-A) — and move what the plan needs: the
//!    owners of a selected teacher/learner pair return those fitnesses to
//!    rank 0 by **point-to-point** sends, while full-vector rules (Moran,
//!    ImitateBest) **gather** every owned block to rank 0;
//! 3. rank 0 applies the plan — resolving the comparison and generating any
//!    mutation — and **broadcasts** the resulting
//!    [`GenDecision`](engine::GenDecision) (the new
//!    strategy travels with the broadcast);
//! 4. every rank commits the decision to its local table.
//!
//! Because every phase is the engine core's own code driven by the same
//! counter-based streams as the shared-memory engine, the distributed run
//! produces the *identical* trajectory — events, assignments, fitness bits,
//! and `RunStats` — for all three update rules; the integration tests
//! assert this rank-count by rank-count.
//!
//! # Fault tolerance
//!
//! The engine is built to terminate with a *typed* outcome under any
//! [`FaultPlan`] — never a panic, never a hang (docs/FAULT_TOLERANCE.md):
//!
//! - every receive is either source-filtered (aliveness-aware: a killed
//!   peer surfaces as [`ClusterError::RankDead`]) or deadline-bound
//!   (`FaultPlan::recv_timeout_ms`, surfacing lost messages as
//!   [`ClusterError::Timeout`]);
//! - any rank that fails **kills itself** before returning, so the failure
//!   cascades: peers blocked on it unblock with `RankDead` within one
//!   generation instead of deadlocking;
//! - rank 0 maintains a generation-boundary [`Checkpoint`] while a fault
//!   plan is active and surfaces it in the [`DegradedRun`] it returns, so
//!   a degraded run is always restartable — and resuming reproduces the
//!   uninterrupted trajectory bit for bit.

pub mod fixation;
pub mod graph;

use crate::collective::Collective;
use crate::comm::{ClusterError, Comm, Rank, VirtualCluster};
use crate::faults::FaultPlan;
use evo_core::engine::{self, EvalScope, FitnessNeed, FitnessView, GenPlan, Provided};
use evo_core::fitness::{evaluate_one_with_kernel_cached, prewarm_cache, FitnessPolicy, GameKernel};
use evo_core::nature::{Event, NatureAgent};
use evo_core::params::Params;
use evo_core::paycache::PayoffCache;
use evo_core::pool::{StratId, StrategyPool};
use evo_core::record::{Checkpoint, RunStats, CHECKPOINT_SCHEMA_VERSION};
use evo_core::rngstream::{stream, Domain};
use ipd::game::GameConfig;
use ipd::state::StateSpace;
use ipd::strategy::Strategy;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Point-to-point tag for fitness returns (collective tags live in their
/// own range, see `collective.rs`).
const FITNESS_TAG: crate::comm::Tag = 1;

/// Messages exchanged by the distributed engine.
#[derive(Debug, Clone)]
enum DistMsg {
    /// Broadcast: this generation's plan (schedule plus fitness needs).
    Plan(GenPlan),
    /// Point-to-point: a selected SSet's relative fitness, returned to the
    /// Nature Agent. Carries its generation so a fault-duplicated message
    /// from an earlier generation is recognised as stale and discarded
    /// instead of being mistaken for the current pair's fitness.
    Fitness { sset: u32, value: f64, generation: u64 },
    /// Gather leaf: one rank's owned block of the fitness vector, starting
    /// at SSet `start` (full-vector rules).
    OwnedFitness { start: u32, values: Vec<f64> },
    /// Broadcast: the Nature Agent's resolved decision — rule outcome and
    /// any mutation's new strategy travel together.
    Decision(engine::GenDecision),
    /// Collective plumbing (barriers / reductions of scalars).
    Scalar(#[allow(dead_code)] f64),
}

/// Configuration of a distributed run. Construct with [`DistConfig::new`]
/// and set the optional fault-tolerance fields as needed; the defaults are
/// a fault-free, checkpoint-free run from generation zero.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistConfig {
    /// Engine parameters (shared with the shared-memory engine).
    pub params: Params,
    /// Total ranks including the Nature Agent (rank 0); ≥ 2.
    pub ranks: usize,
    /// When compute ranks evaluate fitness. `OnDemand` computes only the
    /// teacher's and learner's fitness in generations with a PC event —
    /// the configuration that makes Blue Gene-scale weak scaling feasible
    /// (see DESIGN.md §5, Fig 6/7 discussion).
    pub policy: FitnessPolicy,
    /// Deterministic fault schedule to execute (empty = fault-free; an
    /// empty plan leaves the run bit-identical to one without fault
    /// support).
    #[serde(default)]
    pub faults: FaultPlan,
    /// Have rank 0 refresh a restartable [`Checkpoint`] every N completed
    /// generations, surfaced as [`DistOutcome::checkpoint`].
    #[serde(default)]
    pub checkpoint_every: Option<u64>,
    /// Resume from a checkpoint instead of initialising at generation
    /// zero. The checkpoint's own `params` drive the run (they carry the
    /// seed and generation target of the original run); `params` above is
    /// ignored when this is set.
    #[serde(default)]
    pub resume: Option<Checkpoint>,
    /// Disable the per-rank cross-generation payoff memo-cache
    /// ([`PayoffCache`], docs/PERFORMANCE.md). Caching is on by default
    /// and is cost-only — trajectories and message schedules are
    /// bit-identical either way — so configs serialised before this field
    /// existed deserialise to `false` (cache on) without changing their
    /// results. Phrased as an opt-out so the serde default works.
    #[serde(default)]
    pub disable_payoff_cache: bool,
}

impl DistConfig {
    /// A fault-free, checkpoint-free run from generation zero — the
    /// configuration every pre-fault-tolerance caller used.
    pub fn new(params: Params, ranks: usize, policy: FitnessPolicy) -> Self {
        DistConfig {
            params,
            ranks,
            policy,
            faults: FaultPlan::default(),
            checkpoint_every: None,
            resume: None,
            disable_payoff_cache: false,
        }
    }
}

/// Result of a distributed run.
#[derive(Debug, Clone)]
pub struct DistOutcome {
    /// Final strategy id per SSet (ids are pool-consistent with the
    /// shared-memory engine's, as updates intern in the same order).
    pub assignments: Vec<StratId>,
    /// Final per-SSet strategy feature vectors.
    pub features: Vec<Vec<f64>>,
    /// Aggregate event statistics (as counted by the Nature Agent).
    pub stats: RunStats,
    /// Total point-to-point messages the run sent (collectives included —
    /// they are built from point-to-point sends).
    pub messages_sent: u64,
    /// Events per generation, in order (for trajectory comparison). A
    /// resumed run reports only the generations it executed.
    pub events: Vec<Vec<Event>>,
    /// Per-generation wall times (ns) observed by the Nature Agent.
    /// Empty unless the observability timing layer ([`obs::set_enabled`])
    /// was on; capped at [`obs::GENERATION_TIMING_CAP`] entries.
    pub generation_ns: Vec<u64>,
    /// The most recent periodic checkpoint (`Some` only when
    /// [`DistConfig::checkpoint_every`] was set and at least one interval
    /// completed).
    pub checkpoint: Option<Checkpoint>,
}

/// A distributed run that terminated early but *cleanly*: dead peers were
/// detected, surviving state was snapshotted, and the caller can restart
/// from [`DegradedRun::checkpoint`] to reproduce the uninterrupted
/// trajectory bit for bit ([`DegradedRun::retry_config`] builds that
/// restart configuration).
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedRun {
    /// Ranks observed dead when the Nature Agent degraded. Includes ranks
    /// killed by the fault plan *and* survivors that killed themselves
    /// while cascading the failure.
    pub dead_ranks: Vec<Rank>,
    /// Generations fully committed before the failure — the generation the
    /// checkpoint resumes from.
    pub completed_generations: u64,
    /// Human-readable description of the detected failure.
    pub reason: String,
    /// Restartable snapshot at the last completed generation boundary.
    /// `Some` whenever a fault plan was active; `None` only for failures
    /// outside any fault plan (when no boundary snapshot was maintained).
    pub checkpoint: Option<Checkpoint>,
}

impl DegradedRun {
    /// Build the [`DistConfig`] that resumes this degraded run from its
    /// checkpoint — the re-enqueue plumbing the service layer's automatic
    /// retry uses (docs/SERVICE.md). Returns `None` when no restartable
    /// checkpoint was captured (failure outside any fault plan).
    ///
    /// The retry keeps `base`'s rank count, fitness policy, cache setting,
    /// and periodic-checkpoint interval, resumes from the degraded run's
    /// checkpoint, and **clears the injected fault schedule** (rank kills
    /// and message faults): those faults already executed, and replaying
    /// them against the resumed generation range would either be a no-op
    /// or degrade the retry identically forever. The receive deadline is
    /// kept so emergent failures in the retry still surface as typed
    /// degraded outcomes rather than hangs. Resuming reproduces the
    /// uninterrupted trajectory bit for bit (docs/FAULT_TOLERANCE.md §4).
    pub fn retry_config(&self, base: &DistConfig) -> Option<DistConfig> {
        let cp = self.checkpoint.clone()?;
        let mut cfg = base.clone();
        cfg.params = cp.params.clone();
        cfg.resume = Some(cp);
        cfg.faults.kills.clear();
        cfg.faults.messages = crate::faults::MessageFaults::default();
        Some(cfg)
    }
}

/// Typed failure of a distributed run — what every `expect`/`panic!` in
/// the old message loop became.
#[derive(Debug, Clone, PartialEq)]
pub enum DistError {
    /// Parameter validation failed before any rank was spawned.
    Params(String),
    /// A communication primitive failed in a context with no degraded-mode
    /// recovery (e.g. the Nature Agent's result never materialised).
    Cluster(ClusterError),
    /// A rank received a message of an unexpected kind — a protocol bug,
    /// not a fault-model outcome.
    Protocol {
        /// The rank that observed the unexpected message.
        rank: Rank,
        /// What the protocol expected at that point.
        expected: &'static str,
    },
    /// A worker rank's replicated strategy table diverged from the Nature
    /// Agent's at the end of a fault-free run — the replication protocol
    /// itself is broken (a dropped or reordered commit broadcast), so the
    /// trajectory cannot be trusted.
    ReplicaDivergence {
        /// The first worker rank whose table diverged.
        rank: Rank,
    },
    /// The run degraded: a peer failure was detected and survived. The
    /// boxed [`DegradedRun`] carries the restartable checkpoint.
    Degraded(Box<DegradedRun>),
    /// A *spatial* run degraded ([`graph::run_spatial_distributed`]): same
    /// clean-termination contract, but the restartable snapshot is a
    /// [`evo_core::spatial::SpatialCheckpoint`] rather than the well-mixed
    /// [`Checkpoint`].
    SpatialDegraded(Box<graph::SpatialDegradedRun>),
    /// A *fixation batch* degraded ([`fixation::run_fixation_distributed`]):
    /// same clean-termination contract, but the restartable snapshot is a
    /// [`evo_core::fixation::FixationCheckpoint`] of the completed
    /// replicates.
    FixationDegraded(Box<fixation::FixationDegradedRun>),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Params(e) => write!(f, "invalid parameters: {e}"),
            DistError::Cluster(e) => write!(f, "communication failed: {e}"),
            DistError::Protocol { rank, expected } => {
                write!(f, "protocol violation at rank {rank}: expected {expected}")
            }
            DistError::ReplicaDivergence { rank } => write!(
                f,
                "rank {rank} diverged from the Nature Agent's strategy table in a fault-free run"
            ),
            DistError::Degraded(d) => write!(
                f,
                "run degraded after {} generations (dead ranks {:?}): {}",
                d.completed_generations, d.dead_ranks, d.reason
            ),
            DistError::SpatialDegraded(d) => write!(
                f,
                "spatial run degraded after {} generations (dead ranks {:?}): {}",
                d.completed_generations, d.dead_ranks, d.reason
            ),
            DistError::FixationDegraded(d) => write!(
                f,
                "fixation batch degraded after {} replicates (dead ranks {:?}): {}",
                d.completed_replicates, d.dead_ranks, d.reason
            ),
        }
    }
}

impl std::error::Error for DistError {}

impl From<ClusterError> for DistError {
    fn from(e: ClusterError) -> Self {
        DistError::Cluster(e)
    }
}

/// Owner rank of `sset` under a balanced block distribution over compute
/// ranks `1..ranks`.
pub fn owner_of(sset: usize, num_ssets: usize, ranks: usize) -> usize {
    assert!(ranks >= 2, "need the Nature Agent plus at least one compute rank");
    // Inverse of the balanced block partition used by `owned_range`.
    let compute = ranks - 1;
    1 + ((sset + 1) * compute - 1) / num_ssets
}

/// The SSets owned by `rank` (empty for rank 0, the Nature Agent).
pub fn owned_range(rank: usize, num_ssets: usize, ranks: usize) -> std::ops::Range<usize> {
    if rank == 0 {
        return 0..0;
    }
    // Standard balanced block partition: [r·n/c, (r+1)·n/c).
    let compute = ranks - 1;
    let r = rank - 1;
    (r * num_ssets / compute)..((r + 1) * num_ssets / compute)
}

/// What one rank's thread hands back to [`run_distributed`].
enum RankResult {
    /// Rank 0 completed the run.
    Outcome(Box<DistOutcome>),
    /// Rank 0 detected a failure and degraded.
    Degraded(Box<DegradedRun>),
    /// A compute rank completed; its final table feeds the fault-free
    /// consistency check.
    Table(Vec<StratId>),
    /// A compute rank failed (fault-plan kill or detected peer failure)
    /// after killing itself to cascade the detection.
    Failed {
        #[allow(dead_code)]
        rank: Rank,
        #[allow(dead_code)]
        generation: u64,
    },
}

/// Why a rank's generation loop stopped early.
#[derive(Debug, Clone, PartialEq)]
enum RankError {
    /// A communication primitive surfaced a peer failure or deadline.
    Cluster(ClusterError),
    /// An unexpected message kind arrived.
    Protocol(&'static str),
    /// The fault plan killed this rank.
    Killed,
}

impl std::fmt::Display for RankError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankError::Cluster(e) => write!(f, "{e}"),
            RankError::Protocol(expected) => write!(f, "protocol violation: expected {expected}"),
            RankError::Killed => write!(f, "killed by fault plan"),
        }
    }
}

impl From<ClusterError> for RankError {
    fn from(e: ClusterError) -> Self {
        RankError::Cluster(e)
    }
}

/// Everything a rank thread needs, shipped into the cluster closure once.
struct RunSpec {
    params: Params,
    space: StateSpace,
    policy: FitnessPolicy,
    faults: FaultPlan,
    checkpoint_every: Option<u64>,
    resume: Option<Checkpoint>,
    payoff_cache: bool,
}

impl RunSpec {
    fn recv_timeout(&self) -> Option<Duration> {
        self.faults.recv_timeout_ms.map(Duration::from_millis)
    }
}

/// Run the distributed engine and return its outcome. Spawns `ranks`
/// virtual ranks; intended for functional validation at small scale (the
/// performance model, not this, extrapolates to 262,144 processors).
///
/// # Errors
///
/// - [`DistError::Params`] — invalid parameters or rank count.
/// - [`DistError::Degraded`] — a fault (injected or emergent) was detected;
///   the payload carries the dead ranks and a restartable checkpoint.
/// - [`DistError::Cluster`] / [`DistError::Protocol`] — low-level failures
///   with no degraded-mode context.
pub fn run_distributed(config: &DistConfig) -> Result<DistOutcome, DistError> {
    let _span = obs::span("dist.run");
    if config.ranks < 2 {
        return Err(DistError::Params(
            "need the Nature Agent plus at least one compute rank".into(),
        ));
    }
    // A resumed run is driven by the checkpoint's own params: they carry
    // the seed and the original generation target.
    let params = match &config.resume {
        Some(cp) => cp.params.clone(),
        None => config.params.clone(),
    };
    let space = params
        .validate()
        .map_err(|e| DistError::Params(e.to_string()))?;
    let fault_free = config.faults.is_empty();
    let spec = RunSpec {
        params,
        space,
        policy: config.policy,
        faults: config.faults.clone(),
        checkpoint_every: config.checkpoint_every,
        resume: config.resume.clone(),
        payoff_cache: !config.disable_payoff_cache,
    };
    let ranks = config.ranks;

    let (results, messages_sent) = VirtualCluster::run_with_faults_counted(
        ranks,
        spec.faults.messages.clone(),
        move |comm: Comm<DistMsg>| run_rank(&comm, &spec),
    );

    let mut outcome: Option<Box<DistOutcome>> = None;
    let mut tables: Vec<Vec<StratId>> = Vec::new();
    for r in results {
        match r {
            RankResult::Outcome(o) => outcome = Some(o),
            RankResult::Degraded(d) => return Err(DistError::Degraded(d)),
            RankResult::Table(t) => tables.push(t),
            RankResult::Failed { .. } => {}
        }
    }
    let mut outcome = *outcome.ok_or(DistError::Cluster(ClusterError::Disconnected))?;
    // The post-join total is exact; rank 0's own view could miss peers'
    // in-flight final sends (the count would then vary run to run).
    outcome.messages_sent = messages_sent;
    if fault_free {
        // Consistency of the replicated strategy view — only meaningful
        // when no rank was killed mid-run. Divergence is a typed error,
        // not a panic: the caller decides whether to rerun or alert.
        for (r, table) in tables.iter().enumerate() {
            if *table != outcome.assignments {
                return Err(DistError::ReplicaDivergence { rank: r + 1 });
            }
        }
    }
    Ok(outcome)
}

/// Phase-2 fitness provider for one rank: evaluates the owned range the
/// plan asks for and moves fitness to rank 0 — point-to-point for a PC
/// pair, a gather over the collective tree for full-vector rules. SPMD:
/// every rank runs it each generation so the collective schedules stay
/// aligned.
struct RankProvider<'a> {
    comm: &'a Comm<DistMsg>,
    coll: &'a Collective<'a, Comm<DistMsg>>,
    owned: std::ops::Range<usize>,
    num_ssets: usize,
    space: &'a StateSpace,
    assignments: &'a [StratId],
    pool: &'a StrategyPool,
    game: &'a GameConfig,
    seed: u64,
    recv_timeout: Option<Duration>,
    /// This rank's cross-generation payoff memo-cache (`None` when the run
    /// disabled it). Per-rank state: entries never travel over the wire,
    /// and every rank computes identical values from the replicated
    /// strategy table, so caching cannot skew any message payload.
    cache: Option<&'a PayoffCache>,
}

impl RankProvider<'_> {
    fn is_nature(&self) -> bool {
        self.comm.rank() == 0
    }

    /// Source-filtered receive, deadline-bound when the fault plan set one.
    fn frecv(
        &self,
        src: Rank,
    ) -> Result<crate::comm::Envelope<DistMsg>, ClusterError> {
        match self.recv_timeout {
            Some(t) => self.comm.recv_timeout(Some(src), Some(FITNESS_TAG), t),
            // detlint: allow(comm-discipline, reason = "explicit opt-out: no fault deadline in the plan; the source filter keeps it aliveness-aware (dead owner surfaces as RankDead, not a hang)")
            None => self.comm.recv(Some(src), Some(FITNESS_TAG)),
        }
    }

    fn provide(&mut self, plan: &GenPlan) -> Result<Provided, RankError> {
        // (2) Game dynamics: local, no communication (§V-A).
        let local: Vec<(usize, f64)> = {
            let needed: Vec<usize> = match plan.eval {
                EvalScope::None => Vec::new(),
                EvalScope::Pair { teacher, learner } => self
                    .owned
                    .clone()
                    .filter(|&s| s == teacher as usize || s == learner as usize)
                    .collect(),
                EvalScope::Full => self.owned.clone().collect(),
                // Lattice plans belong to the spatial engine
                // ([`graph::run_spatial_distributed`]), which shards by
                // rows, not SSet blocks.
                EvalScope::Neighborhood(_) => {
                    return Err(RankError::Protocol("well-mixed evaluation scope"))
                }
            };
            needed
                .into_iter()
                .map(|s| {
                    let f = evaluate_one_with_kernel_cached(
                        self.space,
                        self.assignments,
                        self.pool,
                        self.game,
                        self.seed,
                        plan.generation,
                        s,
                        GameKernel::Naive,
                        self.cache,
                    );
                    (s, f)
                })
                .collect()
        };

        // (2b) Move what the Nature Agent needs.
        let view = match plan.need {
            FitnessNeed::None => FitnessView::None,
            FitnessNeed::Pair { teacher, learner } => {
                if self.is_nature() {
                    // Receive from the pair's *owners* specifically: a
                    // source-filtered receive is aliveness-aware, so a dead
                    // owner surfaces as `RankDead` instead of a silent wait.
                    let mut ft = None;
                    let mut fl = None;
                    // Loop until both slots are filled; breaking with the
                    // values makes "both set" a type-level fact instead of
                    // an expect() at the use sites.
                    let (ft, fl) = loop {
                        if let (Some(t), Some(l)) = (ft, fl) {
                            break (t, l);
                        }
                        let want = if ft.is_none() { teacher } else { learner };
                        let owner = owner_of(want as usize, self.num_ssets, self.comm.size());
                        match self.frecv(owner)?.payload {
                            DistMsg::Fitness { sset, value, generation } => {
                                if generation != plan.generation {
                                    // Stale fault-duplicated message from an
                                    // earlier generation: discard.
                                    continue;
                                }
                                if sset == teacher {
                                    ft = Some(value);
                                }
                                if sset == learner {
                                    fl = Some(value);
                                }
                            }
                            _ => return Err(RankError::Protocol("fitness message")),
                        }
                    };
                    FitnessView::Pair { teacher: ft, learner: fl }
                } else {
                    for &(s, f) in &local {
                        if s == teacher as usize || s == learner as usize {
                            self.comm.send(
                                0,
                                FITNESS_TAG,
                                DistMsg::Fitness {
                                    sset: s as u32,
                                    value: f,
                                    generation: plan.generation,
                                },
                            )?;
                        }
                    }
                    FitnessView::None
                }
            }
            FitnessNeed::Full => {
                // Full-vector rules: every rank contributes its owned block
                // through one gather (rank 0's block is empty).
                let block = DistMsg::OwnedFitness {
                    start: self.owned.start as u32,
                    values: local.iter().map(|&(_, f)| f).collect(),
                };
                match self.coll.gather(0, block)? {
                    Some(blocks) => {
                        let mut full = vec![0.0f64; self.num_ssets];
                        for b in blocks {
                            match b {
                                DistMsg::OwnedFitness { start, values } => {
                                    for (i, v) in values.into_iter().enumerate() {
                                        full[start as usize + i] = v;
                                    }
                                }
                                _ => return Err(RankError::Protocol("owned fitness block")),
                            }
                        }
                        FitnessView::Full(full)
                    }
                    None => FitnessView::None,
                }
            }
        };

        // Evaluation-cost accounting mirrors the shared-memory engine
        // arithmetically: the distributed evaluator is the naive kernel,
        // `num_ssets` games per focal SSet.
        let s = self.num_ssets as u64;
        let games = match plan.eval {
            EvalScope::None => 0,
            EvalScope::Pair { .. } => 2 * s,
            EvalScope::Full => s * s,
            // Unreachable: a Neighborhood plan already errored above.
            EvalScope::Neighborhood(_) => 0,
        };
        Ok(Provided { view, games })
    }
}

/// Mutable per-rank run state, kept outside the generation loop so the
/// failure path can snapshot it.
struct RankCtx {
    pool: StrategyPool,
    assignments: Vec<StratId>,
    stats: RunStats,
    all_events: Vec<Vec<Event>>,
    generation_ns: Vec<u64>,
    /// Generations fully committed so far (the resume point).
    generation: u64,
    /// Rank 0 only: consistent snapshot at the current generation boundary,
    /// refreshed each generation while a fault plan is active (mid-
    /// generation failures must not checkpoint half-applied state).
    boundary: Option<Checkpoint>,
    /// Rank 0 only: the latest `checkpoint_every` periodic snapshot.
    periodic: Option<Checkpoint>,
    /// This rank's payoff memo-cache, surviving across generations.
    /// Excluded from checkpoints by design: a resumed run restarts it
    /// cold and still reproduces the identical trajectory (cost-only).
    cache: PayoffCache,
}

/// Build a restartable checkpoint of `ctx` (call only at a generation
/// boundary, when pool/assignments/stats are mutually consistent).
fn snapshot(params: &Params, ctx: &RankCtx) -> Checkpoint {
    Checkpoint {
        schema_version: CHECKPOINT_SCHEMA_VERSION,
        params: params.clone(),
        generation: ctx.generation,
        pool: ctx.pool.iter().map(|(_, s)| (**s).clone()).collect(),
        assignments: ctx.assignments.clone(),
        stats: ctx.stats,
    }
}

/// Per-rank body of the distributed engine: initialise (or resume), drive
/// the generation loop, and convert any failure into a typed, cascading
/// result — this rank kills itself before returning on error so blocked
/// peers unblock.
fn run_rank(comm: &Comm<DistMsg>, spec: &RunSpec) -> RankResult {
    let rank = comm.rank();
    let is_nature = rank == 0;
    let num_ssets = spec.params.num_ssets;

    // Every rank builds the identical initial table (paper: the global
    // strategy view is set up in the initialisation broadcast; here the
    // counter-based streams make it reproducible locally). Resume rebuilds
    // the table from the checkpoint the same way on every rank.
    let mut pool = StrategyPool::new();
    let (assignments, start_gen, stats) = match &spec.resume {
        Some(cp) => {
            for s in &cp.pool {
                pool.intern(s.clone());
            }
            (cp.assignments.clone(), cp.generation, cp.stats)
        }
        None => {
            let mixed = matches!(spec.params.kind, evo_core::params::StrategyKind::Mixed);
            let a = (0..num_ssets)
                .map(|i| {
                    // detlint: allow(rng-domain, reason = "replicated init: every rank rebuilds the identical gen-0 table with the same Init streams population::new uses, so the distributed and shared-memory backends agree bit-for-bit")
                    let mut rng = stream(spec.params.seed, Domain::Init, i as u64, 0);
                    pool.intern(Strategy::random(spec.space, mixed, &mut rng))
                })
                .collect();
            (a, 0, RunStats::default())
        }
    };
    let mut ctx = RankCtx {
        pool,
        assignments,
        stats,
        all_events: Vec::new(),
        generation_ns: Vec::new(),
        generation: start_gen,
        boundary: None,
        periodic: None,
        cache: PayoffCache::new(spec.params.game),
    };
    if spec.payoff_cache && spec.resume.is_some() {
        // Resume cold-start fix (docs/PERFORMANCE.md): the cache is
        // excluded from checkpoints, so pre-warm it from the restored
        // strategy table instead of replaying the pair matrix on the
        // first post-resume evaluation. Cost-only; every value comes
        // from the same pure functions a cache miss would call.
        prewarm_cache(
            &spec.space,
            &ctx.assignments,
            &ctx.pool,
            &spec.params.game,
            GameKernel::Naive,
            false,
            &ctx.cache,
        );
    }
    let fault_aware = !spec.faults.is_empty();
    if is_nature && fault_aware {
        ctx.boundary = Some(snapshot(&spec.params, &ctx));
    }

    match drive(comm, spec, &mut ctx, start_gen, fault_aware) {
        Ok(()) => {
            if is_nature {
                RankResult::Outcome(Box::new(DistOutcome {
                    features: ctx
                        .assignments
                        .iter()
                        .map(|&id| ctx.pool.get(id).feature_vector())
                        .collect(),
                    assignments: ctx.assignments,
                    stats: ctx.stats,
                    // Placeholder: `run_distributed` overwrites this with
                    // the exact post-join cluster total.
                    messages_sent: 0,
                    events: ctx.all_events,
                    generation_ns: ctx.generation_ns,
                    checkpoint: ctx.periodic,
                }))
            } else {
                RankResult::Table(ctx.assignments)
            }
        }
        Err(err) => {
            // Cascade: peers blocked on this rank must observe the death
            // instead of waiting forever.
            comm.kill();
            if is_nature {
                let dead_ranks: Vec<Rank> = (0..comm.size())
                    .filter(|&r| r != rank && !comm.is_alive(r))
                    .collect();
                RankResult::Degraded(Box::new(DegradedRun {
                    dead_ranks,
                    completed_generations: ctx.generation,
                    reason: err.to_string(),
                    checkpoint: ctx.boundary,
                }))
            } else {
                RankResult::Failed {
                    rank,
                    generation: ctx.generation,
                }
            }
        }
    }
}

/// The generation loop proper. Returns `Err` on the first fault-plan kill,
/// detected peer failure, deadline expiry, or protocol violation; `ctx` is
/// left at the last committed generation boundary.
fn drive(
    comm: &Comm<DistMsg>,
    spec: &RunSpec,
    ctx: &mut RankCtx,
    start_gen: u64,
    fault_aware: bool,
) -> Result<(), RankError> {
    let rank = comm.rank();
    let ranks = comm.size();
    let is_nature = rank == 0;
    let num_ssets = spec.params.num_ssets;
    let coll = match spec.recv_timeout() {
        Some(t) => Collective::with_recv_timeout(comm, t),
        None => Collective::new(comm),
    };
    // The setup barrier stands in for the paper's initial broadcast.
    coll.barrier(DistMsg::Scalar(0.0))?;

    let nature = NatureAgent::from_params(&spec.params);
    let owned = owned_range(rank, num_ssets, ranks);

    for generation in start_gen..spec.params.generations {
        if is_nature && fault_aware {
            ctx.boundary = Some(snapshot(&spec.params, ctx));
        }
        if spec.faults.kills_at(rank, generation) {
            obs::counters().add_fault_injected();
            return Err(RankError::Killed);
        }

        // Only the Nature Agent times generations: its view spans the full
        // bcast → compute → resolve → bcast cycle, matching what the
        // shared-memory engine's per-step timing measures.
        // detlint: allow(wall-clock, reason = "obs-gated timing; measures the cycle, never feeds simulation state")
        let timer = (is_nature && obs::enabled()).then(std::time::Instant::now);

        // (1) Nature plans the generation and broadcasts the plan.
        let msg = is_nature.then(|| {
            DistMsg::Plan(engine::plan(
                &nature,
                num_ssets as u32,
                spec.params.rule,
                spec.policy,
                generation,
            ))
        });
        let plan = match coll.bcast(0, msg)? {
            DistMsg::Plan(p) => p,
            _ => return Err(RankError::Protocol("generation plan")),
        };

        // (2) Game dynamics and fitness movement through the provider.
        let provided = RankProvider {
            comm,
            coll: &coll,
            owned: owned.clone(),
            num_ssets,
            space: &spec.space,
            assignments: &ctx.assignments,
            pool: &ctx.pool,
            game: &spec.params.game,
            seed: spec.params.seed,
            recv_timeout: spec.recv_timeout(),
            cache: spec.payoff_cache.then_some(&ctx.cache),
        }
        .provide(&plan)?;

        // (3) Nature applies the plan — the engine core owns all stats —
        // and broadcasts the decision; (4) every rank commits it. PC-free,
        // mutation-free generations broadcast nothing beyond the plan.
        if is_nature {
            let delta = engine::apply(
                &nature,
                &spec.space,
                &plan,
                &provided,
                &mut ctx.assignments,
                &mut ctx.pool,
                &mut ctx.stats,
            );
            if plan.has_update() {
                coll.bcast(0, Some(DistMsg::Decision(delta.decision.clone())))?;
            }
            ctx.all_events.push(delta.events);
        } else if plan.has_update() {
            match coll.bcast(0, None)? {
                DistMsg::Decision(decision) => {
                    // Compute ranks replay the commit on their replicated
                    // table; rank 0's `stats` is the authoritative copy.
                    let mut replica_stats = RunStats::default();
                    engine::commit(&decision, &mut ctx.assignments, &mut ctx.pool, &mut replica_stats);
                }
                _ => return Err(RankError::Protocol("decision")),
            }
        }
        ctx.generation = generation + 1;

        if let Some(every) = spec.checkpoint_every {
            if is_nature && every > 0 && ctx.generation.is_multiple_of(every) {
                ctx.periodic = Some(snapshot(&spec.params, ctx));
            }
        }

        if let Some(t0) = timer {
            let ns = t0.elapsed().as_nanos() as u64;
            obs::generation_histogram().record(ns);
            if ctx.generation_ns.len() < obs::GENERATION_TIMING_CAP {
                ctx.generation_ns.push(ns);
            }
        }
    }

    // Refresh the boundary one last time: a peer death first observed at
    // the teardown barrier must still checkpoint the *final* state.
    if is_nature && fault_aware {
        ctx.boundary = Some(snapshot(&spec.params, ctx));
    }
    coll.barrier(DistMsg::Scalar(0.0))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultAction, MessageFault, MessageFaults, RankKill};
    use evo_core::fitness::ExecMode;
    use evo_core::population::Population;
    use ipd::game::GameConfig;

    fn params(seed: u64, ssets: usize, gens: u64) -> Params {
        Params {
            mem_steps: 1,
            num_ssets: ssets,
            generations: gens,
            seed,
            game: GameConfig {
                rounds: 16,
                ..GameConfig::default()
            },
            ..Params::default()
        }
    }

    fn config(p: Params, ranks: usize, policy: FitnessPolicy) -> DistConfig {
        DistConfig::new(p, ranks, policy)
    }

    #[test]
    fn owner_block_partition_covers_all_ssets() {
        for (s, r) in [(10usize, 3usize), (16, 5), (7, 2), (100, 9), (5, 7)] {
            let mut owners = vec![0usize; s];
            for rank in 1..r {
                for i in owned_range(rank, s, r) {
                    owners[i] += 1;
                    assert_eq!(owner_of(i, s, r), rank, "sset {i} (s={s}, r={r})");
                }
            }
            assert!(owners.iter().all(|&c| c == 1), "s={s} r={r}: {owners:?}");
            assert!(owned_range(0, s, r).is_empty(), "Nature owns nothing");
        }
    }

    #[test]
    fn distributed_matches_shared_memory_engine() {
        for seed in [1u64, 2, 3] {
            let p = params(seed, 10, 40);
            let mut reference = Population::new(p.clone()).unwrap();
            reference.exec_mode = ExecMode::Sequential;
            let mut ref_events = Vec::new();
            for _ in 0..40 {
                ref_events.push(reference.step().events);
            }
            let out =
                run_distributed(&config(p, 4, FitnessPolicy::EveryGeneration)).unwrap();
            assert_eq!(out.assignments, reference.assignments(), "seed {seed}");
            assert_eq!(out.events, ref_events, "seed {seed}");
            assert_eq!(out.stats, *reference.stats(), "seed {seed}: full RunStats");
        }
    }

    #[test]
    fn payoff_cache_off_is_bit_identical_to_on() {
        // The per-rank memo-cache is cost-only: every fitness value a rank
        // sends or gathers must be the identical f64 with caching
        // disabled, so events (which embed fitness bits), assignments,
        // and stats all match.
        for policy in [FitnessPolicy::EveryGeneration, FitnessPolicy::OnDemand] {
            let p = params(17, 10, 50);
            let on = run_distributed(&config(p.clone(), 4, policy)).unwrap();
            let mut cfg_off = config(p, 4, policy);
            cfg_off.disable_payoff_cache = true;
            let off = run_distributed(&cfg_off).unwrap();
            assert_eq!(on.assignments, off.assignments, "{policy:?}");
            assert_eq!(on.events, off.events, "{policy:?}");
            assert_eq!(on.stats, off.stats, "{policy:?}: games accounting");
        }
    }

    #[test]
    fn all_update_rules_match_shared_memory_bit_for_bit() {
        use evo_core::params::UpdateRule;
        // The engine core lifts the old PairwiseComparison-only restriction:
        // Moran and ImitateBest gather the full fitness vector over the
        // collective tree and must reproduce shared memory exactly —
        // events (fitness bits included), assignments, and RunStats.
        for rule in [
            UpdateRule::PairwiseComparison,
            UpdateRule::Moran,
            UpdateRule::ImitateBest,
        ] {
            for policy in [FitnessPolicy::EveryGeneration, FitnessPolicy::OnDemand] {
                let mut p = params(21, 9, 40);
                p.rule = rule;
                let mut reference = Population::new(p.clone()).unwrap();
                reference.exec_mode = ExecMode::Sequential;
                reference.fitness_policy = policy;
                let mut ref_events = Vec::new();
                for _ in 0..40 {
                    ref_events.push(reference.step().events);
                }
                let out = run_distributed(&config(p, 4, policy)).unwrap();
                assert_eq!(
                    out.assignments,
                    reference.assignments(),
                    "{rule:?}/{policy:?}: assignments"
                );
                assert_eq!(out.events, ref_events, "{rule:?}/{policy:?}: events");
                assert_eq!(
                    out.stats,
                    *reference.stats(),
                    "{rule:?}/{policy:?}: full RunStats (games_played included)"
                );
                assert!(out.stats.pc_events > 0, "{rule:?}: rule events occurred");
            }
        }
    }

    #[test]
    fn full_vector_rules_are_rank_count_invariant() {
        use evo_core::params::UpdateRule;
        for rule in [UpdateRule::Moran, UpdateRule::ImitateBest] {
            let mut p = params(33, 11, 30);
            p.rule = rule;
            let base =
                run_distributed(&config(p.clone(), 2, FitnessPolicy::EveryGeneration)).unwrap();
            for ranks in [3usize, 6, 13] {
                let out = run_distributed(&config(p.clone(), ranks, FitnessPolicy::EveryGeneration))
                    .unwrap();
                assert_eq!(out.assignments, base.assignments, "{rule:?} at {ranks} ranks");
                assert_eq!(out.events, base.events, "{rule:?} at {ranks} ranks");
                assert_eq!(out.stats, base.stats, "{rule:?} at {ranks} ranks");
            }
        }
    }

    #[test]
    fn trajectory_invariant_to_rank_count() {
        let base =
            run_distributed(&config(params(9, 12, 30), 2, FitnessPolicy::EveryGeneration))
                .unwrap();
        for ranks in [3usize, 5, 8, 13] {
            let out = run_distributed(&config(
                params(9, 12, 30),
                ranks,
                FitnessPolicy::EveryGeneration,
            ))
            .unwrap();
            assert_eq!(out.assignments, base.assignments, "ranks {ranks}");
            assert_eq!(out.events, base.events, "ranks {ranks}");
        }
    }

    #[test]
    fn on_demand_policy_gives_same_trajectory() {
        let every =
            run_distributed(&config(params(5, 8, 50), 3, FitnessPolicy::EveryGeneration))
                .unwrap();
        let lazy =
            run_distributed(&config(params(5, 8, 50), 3, FitnessPolicy::OnDemand)).unwrap();
        assert_eq!(every.assignments, lazy.assignments);
        assert_eq!(every.events, lazy.events);
        assert!(
            lazy.stats.games_played < every.stats.games_played,
            "OnDemand skips PC-free generations"
        );
    }

    #[test]
    fn on_demand_stats_match_shared_memory() {
        // The RunStats drift this refactor fixed: the distributed engine
        // used to report games_played = 0. Both policies must now account
        // evaluation work identically to the shared-memory engine.
        for policy in [FitnessPolicy::EveryGeneration, FitnessPolicy::OnDemand] {
            let p = params(7, 8, 50);
            let mut reference = Population::new(p.clone()).unwrap();
            reference.fitness_policy = policy;
            reference.run_to_end();
            let out = run_distributed(&config(p, 3, policy)).unwrap();
            assert_eq!(out.stats, *reference.stats(), "{policy:?}");
            assert!(out.stats.games_played > 0);
        }
    }

    #[test]
    fn more_ranks_than_ssets_still_works() {
        let out = run_distributed(&config(
            params(11, 4, 20),
            9, // 8 compute ranks for 4 SSets: some own nothing
            FitnessPolicy::EveryGeneration,
        ))
        .unwrap();
        assert_eq!(out.assignments.len(), 4);
        assert_eq!(out.stats.generations, 20);
    }

    #[test]
    fn mixed_strategy_population_distributes() {
        let mut p = params(13, 8, 30);
        p.kind = evo_core::params::StrategyKind::Mixed;
        let mut reference = Population::new(p.clone()).unwrap();
        reference.run(30);
        let out = run_distributed(&config(p, 4, FitnessPolicy::EveryGeneration)).unwrap();
        assert_eq!(out.assignments, reference.assignments());
    }

    #[test]
    fn message_volume_scales_with_generations() {
        let short =
            run_distributed(&config(params(3, 6, 10), 4, FitnessPolicy::OnDemand)).unwrap();
        let long =
            run_distributed(&config(params(3, 6, 100), 4, FitnessPolicy::OnDemand)).unwrap();
        assert!(long.messages_sent > short.messages_sent);
        // Every generation broadcasts at least the schedule: ≥ (ranks-1)
        // messages per generation.
        assert!(long.messages_sent >= 100 * 3);
    }

    #[test]
    fn noisy_games_still_match_reference() {
        let mut p = params(17, 6, 30);
        p.game.noise = 0.05;
        let mut reference = Population::new(p.clone()).unwrap();
        reference.run(30);
        let out = run_distributed(&config(p, 3, FitnessPolicy::EveryGeneration)).unwrap();
        assert_eq!(out.assignments, reference.assignments());
    }

    #[test]
    fn too_few_ranks_is_a_params_error() {
        let err = run_distributed(&config(params(1, 4, 5), 1, FitnessPolicy::OnDemand))
            .unwrap_err();
        assert!(matches!(err, DistError::Params(_)));
    }

    #[test]
    fn rank_kill_degrades_cleanly_with_checkpoint() {
        // The headline acceptance test: an injected rank kill terminates
        // with a typed DegradedRun — no panic, no hang — carrying a
        // restartable checkpoint at a committed generation boundary.
        let mut cfg = config(params(19, 10, 40), 4, FitnessPolicy::EveryGeneration);
        cfg.faults.kills = vec![RankKill {
            rank: 2,
            generation: 13,
        }];
        let err = run_distributed(&cfg).unwrap_err();
        let DistError::Degraded(d) = err else {
            panic!("expected DegradedRun, got something else");
        };
        assert!(d.dead_ranks.contains(&2), "dead ranks: {:?}", d.dead_ranks);
        // Rank 0's sends are asynchronous, so it may legitimately commit
        // generations past the kill before it next *receives* from the dead
        // rank — but never past the end of the run.
        assert!(d.completed_generations <= 40);
        let cp = d.checkpoint.expect("fault-aware runs always checkpoint");
        assert_eq!(cp.generation, d.completed_generations);
        assert_eq!(cp.schema_version, CHECKPOINT_SCHEMA_VERSION);
    }

    #[test]
    fn degraded_run_resumes_bit_identical_to_uninterrupted() {
        let p = params(23, 8, 40);
        let clean =
            run_distributed(&config(p.clone(), 4, FitnessPolicy::EveryGeneration)).unwrap();

        let mut cfg = config(p, 4, FitnessPolicy::EveryGeneration);
        cfg.faults.kills = vec![RankKill {
            rank: 1,
            generation: 17,
        }];
        let DistError::Degraded(d) = run_distributed(&cfg).unwrap_err() else {
            panic!("expected degraded run");
        };
        let cp = d.checkpoint.expect("checkpoint present");
        let resume_from = cp.generation;

        let mut resumed_cfg = config(cp.params.clone(), 4, FitnessPolicy::EveryGeneration);
        resumed_cfg.resume = Some(cp);
        let resumed = run_distributed(&resumed_cfg).unwrap();

        assert_eq!(resumed.assignments, clean.assignments, "assignments");
        assert_eq!(resumed.stats, clean.stats, "full RunStats");
        // The resumed run's events are exactly the clean run's tail.
        assert_eq!(
            resumed.events,
            clean.events[resume_from as usize..].to_vec(),
            "event tail from generation {resume_from}"
        );
    }

    #[test]
    fn periodic_checkpoint_resumes_bit_identical() {
        let p = params(29, 9, 40);
        let clean = run_distributed(&config(p.clone(), 3, FitnessPolicy::OnDemand)).unwrap();

        let mut cfg = config(p, 3, FitnessPolicy::OnDemand);
        cfg.checkpoint_every = Some(15);
        let out = run_distributed(&cfg).unwrap();
        assert_eq!(out.assignments, clean.assignments, "checkpointing is inert");
        let cp = out.checkpoint.expect("periodic checkpoint present");
        assert_eq!(cp.generation, 30, "latest multiple of 15 within 40");

        let resume_from = cp.generation;
        let mut resumed_cfg = config(cp.params.clone(), 3, FitnessPolicy::OnDemand);
        resumed_cfg.resume = Some(cp);
        let resumed = run_distributed(&resumed_cfg).unwrap();
        assert_eq!(resumed.assignments, clean.assignments);
        assert_eq!(resumed.stats, clean.stats);
        assert_eq!(resumed.events, clean.events[resume_from as usize..].to_vec());
    }

    #[test]
    fn duplicate_message_faults_leave_trajectory_bit_identical() {
        // Duplicated messages are absorbed: collective tags are never
        // reused and fitness messages carry their generation, so a stale
        // duplicate is discarded instead of matched.
        let p = params(31, 8, 40);
        let clean =
            run_distributed(&config(p.clone(), 4, FitnessPolicy::EveryGeneration)).unwrap();
        let mut cfg = config(p, 4, FitnessPolicy::EveryGeneration);
        cfg.faults.messages = MessageFaults {
            faults: (0..12)
                .map(|i| MessageFault {
                    src: (i % 4) as usize,
                    nth_send: (i * 3) as u64,
                    action: FaultAction::Duplicate,
                })
                .collect(),
        };
        let out = run_distributed(&cfg).unwrap();
        assert_eq!(out.assignments, clean.assignments);
        assert_eq!(out.events, clean.events);
        assert_eq!(out.stats, clean.stats);
    }

    #[test]
    fn dropped_message_degrades_instead_of_hanging() {
        // Drop the plan broadcast's very first send (rank 0's send #0 of
        // the first bcast after the setup barrier). With a receive
        // deadline the run must degrade cleanly rather than hang.
        let mut cfg = config(params(37, 8, 40), 4, FitnessPolicy::EveryGeneration);
        cfg.faults.messages = MessageFaults {
            faults: vec![MessageFault {
                src: 0,
                nth_send: 5,
                action: FaultAction::Drop,
            }],
        };
        cfg.faults.recv_timeout_ms = Some(200);
        match run_distributed(&cfg) {
            Err(DistError::Degraded(d)) => {
                assert!(d.checkpoint.is_some(), "degraded run leaves a checkpoint");
            }
            Ok(_) => {
                // The dropped send may be one whose loss the protocol
                // tolerates; completing cleanly is also a valid outcome —
                // the property under test is "no hang, no panic".
            }
            Err(other) => panic!("expected degraded or clean, got {other}"),
        }
    }

    #[test]
    fn fault_free_plan_with_deadline_is_bit_identical() {
        // A deadline alone (no scheduled faults) must not perturb the
        // trajectory: fault-free runs never reach a timeout branch.
        let p = params(41, 8, 30);
        let clean =
            run_distributed(&config(p.clone(), 3, FitnessPolicy::EveryGeneration)).unwrap();
        let mut cfg = config(p, 3, FitnessPolicy::EveryGeneration);
        cfg.faults.recv_timeout_ms = Some(5_000);
        let out = run_distributed(&cfg).unwrap();
        assert_eq!(out.assignments, clean.assignments);
        assert_eq!(out.events, clean.events);
        assert_eq!(out.stats, clean.stats);
    }

    #[test]
    fn seeded_fault_plans_terminate_without_hanging() {
        // Property sweep: every seeded fault plan must produce a typed
        // outcome (clean or degraded) — the no-panic/no-hang guarantee.
        for seed in 0..5u64 {
            let mut cfg = config(params(seed, 8, 30), 4, FitnessPolicy::EveryGeneration);
            cfg.faults = FaultPlan::seeded(seed, 4, 30, 1, 2);
            match run_distributed(&cfg) {
                Ok(_) => {}
                Err(DistError::Degraded(d)) => {
                    assert!(d.checkpoint.is_some(), "seed {seed}: checkpoint present");
                }
                Err(other) => panic!("seed {seed}: unexpected error {other}"),
            }
        }
    }
}
