//! Virtual-time execution: a conservative logical-clock performance
//! simulator layered on the functional cluster.
//!
//! Each rank carries a local virtual clock. Computation advances it
//! explicitly ([`TimedComm::compute`]); every message is stamped with its
//! arrival time `send_clock + α + hops·c_hop` (hops from the torus
//! topology), and a receive advances the receiver's clock to at least that
//! arrival. The run's **makespan** — the maximum clock over all ranks — is
//! the simulated wall-clock of the whole program, the LogP-style quantity
//! (à la LogGOPSim) that bridges the purely functional engine and the
//! closed-form model in [`crate::perf`]:
//!
//! - the *analytic* model can reach 262,144 processors but idealises
//!   pipelining and skew;
//! - the *virtual-time simulator* runs the real message-by-message
//!   protocol (collectives included, through the shared [`Messenger`]
//!   trait) at rank counts a workstation can host, capturing tree
//!   pipelining, stragglers, and serialisation exactly.
//!
//! [`simulate_run`] uses this to replay the distributed engine's §V
//! communication pattern with *charged* (not executed) game time, giving
//! simulated scaling curves that validate the analytic model's shape.
//!
//! The simulator models a *healthy* machine: [`TimedComm`] keeps the
//! [`Messenger`] trait's default deadline-free receive, so fault
//! injection and recv deadlines (docs/FAULT_TOLERANCE.md) are a
//! functional-engine concern that never skews makespans here.

use crate::collective::{Collective, Messenger};
use crate::comm::{ClusterError, Comm, Envelope, Rank, Tag, VirtualCluster};
use crate::dist::owned_range;
use crate::perf::{MachineProfile, Workload};
use crate::topology::Torus3D;
use evo_core::fitness::FitnessPolicy;
use evo_core::nature::NatureAgent;
use evo_core::params::StrategyKind;
use std::cell::Cell;
use std::sync::Arc;

/// A payload carrying its virtual arrival time.
#[derive(Debug, Clone)]
pub struct Timed<T> {
    /// Virtual time at which the message is available at the receiver.
    pub arrival: f64,
    /// The wrapped payload.
    pub payload: T,
}

/// Per-message network cost parameters for the virtual-time layer.
#[derive(Debug, Clone)]
pub struct NetCosts {
    /// Fixed per-message latency (seconds).
    pub alpha: f64,
    /// Per-torus-hop transit cost (seconds).
    pub per_hop: f64,
    /// Receive-side software overhead added when a message is consumed.
    pub recv_overhead: f64,
    /// Topology used for hop counts.
    pub torus: Torus3D,
}

impl NetCosts {
    /// Costs from a machine profile and rank count (balanced torus).
    pub fn from_profile(profile: &MachineProfile, ranks: usize) -> Self {
        NetCosts {
            alpha: profile.alpha_p2p,
            per_hop: profile.per_hop,
            recv_overhead: profile.alpha_coll,
            torus: Torus3D::balanced(ranks),
        }
    }
}

/// A communicator whose sends and receives advance a per-rank virtual
/// clock. Implements [`Messenger`], so every collective algorithm runs on
/// it unchanged — each tree edge then contributes real simulated latency.
pub struct TimedComm<T> {
    comm: Comm<Timed<T>>,
    clock: Cell<f64>,
    net: Arc<NetCosts>,
}

impl<T> std::fmt::Debug for TimedComm<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TimedComm")
            .field("comm", &self.comm)
            .field("clock", &self.clock)
            .finish_non_exhaustive()
    }
}

impl<T: Send + Clone + 'static> TimedComm<T> {
    /// Wrap a raw communicator.
    pub fn new(comm: Comm<Timed<T>>, net: Arc<NetCosts>) -> Self {
        TimedComm {
            comm,
            clock: Cell::new(0.0),
            net,
        }
    }

    /// This rank's current virtual time.
    pub fn now(&self) -> f64 {
        self.clock.get()
    }

    /// Charge `seconds` of local computation.
    pub fn compute(&self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.clock.set(self.clock.get() + seconds);
    }
}

impl<T: Send + Clone + 'static> Messenger for TimedComm<T> {
    type Payload = T;

    fn rank(&self) -> Rank {
        self.comm.rank()
    }

    fn size(&self) -> usize {
        self.comm.size()
    }

    fn send(&self, dst: Rank, tag: Tag, payload: T) -> Result<(), ClusterError> {
        let hops = self.net.torus.hops(self.comm.rank(), dst) as f64;
        let arrival = self.clock.get() + self.net.alpha + hops * self.net.per_hop;
        self.comm.send(dst, tag, Timed { arrival, payload })
    }

    fn recv(&self, src: Option<Rank>, tag: Option<Tag>) -> Result<Envelope<T>, ClusterError> {
        // detlint: allow(comm-discipline, reason = "virtual-time wrapper: TimedComm models a fault-free network (no kills, no drops), so a blocking receive cannot deadlock; it forwards to the aliveness-aware Comm::recv underneath")
        let env = self.comm.recv(src, tag)?;
        // Conservative clock rule: the receive completes no earlier than
        // both the local clock and the message's arrival.
        let t = self.clock.get().max(env.payload.arrival) + self.net.recv_overhead;
        self.clock.set(t);
        Ok(Envelope {
            src: env.src,
            dst: env.dst,
            tag: env.tag,
            payload: env.payload.payload,
        })
    }
}

/// Run `body` on `size` timed ranks; returns each rank's result paired
/// with its final clock, plus the makespan (max clock).
pub fn run_timed<T, R, F>(size: usize, net: NetCosts, body: F) -> (Vec<R>, f64)
where
    T: Send + Clone + 'static,
    R: Send + 'static,
    F: Fn(&TimedComm<T>) -> R + Send + Sync + 'static,
{
    let net = Arc::new(net);
    let results = VirtualCluster::run(size, move |comm: Comm<Timed<T>>| {
        let timed = TimedComm::new(comm, Arc::clone(&net));
        let r = body(&timed);
        (r, timed.now())
    });
    let makespan = results
        .iter()
        .map(|(_, t)| *t)
        .fold(0.0f64, f64::max);
    (results.into_iter().map(|(r, _)| r).collect(), makespan)
}

/// Simulate the distributed engine's per-generation protocol (§V-B) with
/// charged compute time: virtual ranks exchange the real schedule /
/// fitness / update messages while game play is *charged* from the
/// profile's per-game cost instead of executed. Returns the simulated
/// wall-clock seconds of the whole run.
///
/// This is the discrete-event counterpart of
/// [`crate::perf::PerfModel::predict`]; the two agree on shape (tested)
/// while the simulation additionally captures pipelining and skew.
pub fn simulate_run(
    workload: &Workload,
    profile: &MachineProfile,
    ranks: usize,
    policy: FitnessPolicy,
    seed: u64,
) -> f64 {
    assert!(ranks >= 2, "Nature Agent plus at least one compute rank");
    let net = NetCosts::from_profile(profile, ranks);
    let game_cost = profile.game_cost[workload.mem_steps];
    let num_ssets = workload.num_ssets as usize;
    let generations = workload.generations;
    let nature = NatureAgent {
        pc_rate: workload.pc_rate,
        mutation_rate: workload.mutation_rate,
        beta: 1.0,
        teacher_must_be_fitter: true,
        kind: StrategyKind::Pure,
        mutation_kind: Default::default(),
        seed,
    };
    let (_, makespan) = run_timed(ranks, net, move |comm: &TimedComm<u64>| {
        let coll = Collective::new(comm);
        let rank = comm.rank();
        let is_nature = rank == 0;
        let _ = owned_range(rank, num_ssets, comm.size()); // kept for parity with dist.rs
        for generation in 0..generations {
            // Schedule broadcast.
            let schedule = nature.schedule(num_ssets as u32, generation);
            let encoded = match schedule.pc {
                Some((t, l)) => 1 + ((t as u64) << 32 | l as u64),
                None => 0,
            };
            let word = coll
                .bcast(0, is_nature.then_some(encoded))
                .expect("schedule bcast");
            let pc = (word != 0).then(|| {
                let w = word - 1;
                ((w >> 32) as usize, (w & 0xffff_ffff) as usize)
            });
            // Charge game dynamics. Following §V, an SSet's agents (one
            // per opponent game) are spread across the compute nodes, so
            // per-rank work is the global game count divided by the
            // compute ranks — exactly what the analytic model charges.
            let compute_ranks = comm.size() - 1;
            if !is_nature {
                let games_total = match policy {
                    FitnessPolicy::EveryGeneration => num_ssets * num_ssets,
                    FitnessPolicy::OnDemand => {
                        if pc.is_some() {
                            2 * num_ssets
                        } else {
                            0
                        }
                    }
                };
                // Balanced share, quantised up (the straggler defines the
                // generation's critical path).
                let my_games = games_total.div_ceil(compute_ranks);
                comm.compute(my_games as f64 * game_cost);
            }
            // Fitness returns: every compute rank holds agents of the
            // selected SSets, so the teacher's and learner's partial sums
            // flow to the Nature Agent as reductions over the tree.
            if pc.is_some() {
                for _ in 0..2 {
                    let _ = coll.reduce(0, 1u64, |a, b| a + b).expect("fitness reduce");
                }
                let _ = coll
                    .bcast(0, is_nature.then_some(1u64))
                    .expect("outcome bcast");
            }
            // Mutation broadcast.
            if schedule.mutation.is_some() {
                let _ = coll
                    .bcast(0, is_nature.then_some(2u64))
                    .expect("mutation bcast");
            }
        }
        0u8
    });
    makespan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::PerfModel;

    fn net(ranks: usize) -> NetCosts {
        NetCosts {
            alpha: 1e-6,
            per_hop: 1e-7,
            recv_overhead: 5e-7,
            torus: Torus3D::balanced(ranks),
        }
    }

    #[test]
    fn clocks_respect_message_causality() {
        // Receiver's clock after recv ≥ sender's send time + latency.
        let (results, makespan) = run_timed(2, net(2), |comm: &TimedComm<f64>| {
            if comm.rank() == 0 {
                comm.compute(1.0);
                let sent_at = comm.now();
                comm.send(1, 0, sent_at).unwrap();
                sent_at
            } else {
                let env = comm.recv(None, Some(0)).unwrap();
                assert!(
                    comm.now() > env.payload,
                    "receiver clock {} must pass sender time {}",
                    comm.now(),
                    env.payload
                );
                comm.now()
            }
        });
        assert!(makespan >= results[1]);
        assert!(makespan > 1.0);
    }

    #[test]
    fn compute_advances_only_local_clock() {
        let (results, _) = run_timed(3, net(3), |comm: &TimedComm<u8>| {
            if comm.rank() == 1 {
                comm.compute(5.0);
            }
            comm.now()
        });
        assert_eq!(results[0], 0.0);
        assert_eq!(results[1], 5.0);
        assert_eq!(results[2], 0.0);
    }

    #[test]
    fn timed_bcast_cost_grows_logarithmically() {
        // Broadcast completion time should grow ~log2(P), not ~P.
        let time_for = |p: usize| -> f64 {
            let (results, _) = run_timed(p, net(p), |comm: &TimedComm<u8>| {
                let coll = Collective::new(comm);
                coll.bcast(0, (comm.rank() == 0).then_some(1)).unwrap();
                comm.now()
            });
            results.iter().cloned().fold(0.0, f64::max)
        };
        let t4 = time_for(4);
        let t16 = time_for(16);
        let t64 = time_for(64);
        assert!(t16 > t4 && t64 > t16);
        // Ratio between successive 4x steps stays near log growth:
        // t64/t16 should be well under the 4x a linear broadcast would pay.
        assert!(t64 / t16 < 2.5, "t16 {t16}, t64 {t64}");
    }

    #[test]
    fn barrier_synchronises_clocks_forward() {
        let (results, _) = run_timed(4, net(4), |comm: &TimedComm<u8>| {
            if comm.rank() == 2 {
                comm.compute(3.0); // straggler
            }
            let coll = Collective::new(comm);
            coll.barrier(0).unwrap();
            comm.now()
        });
        // After a barrier everyone's clock is at least the straggler's.
        for (r, &t) in results.iter().enumerate() {
            assert!(t >= 3.0, "rank {r} clock {t} behind straggler");
        }
    }

    #[test]
    fn simulated_run_matches_analytic_model_shape() {
        // Same workload, shrunk to simulator scale: efficiency from the
        // discrete-event simulation must decrease with ranks and stay
        // within the unit interval, and runtime within 3x of the analytic
        // model at every point.
        let profile = MachineProfile::bluegene_p();
        let model = PerfModel::new(profile.clone());
        let w = Workload {
            num_ssets: 256,
            mem_steps: 6,
            generations: 40,
            pc_rate: 0.2,
            mutation_rate: 0.05,
            policy: FitnessPolicy::OnDemand,
        };
        let mut last_time = f64::INFINITY;
        for compute_ranks in [2usize, 4, 8, 16] {
            let sim = simulate_run(&w, &profile, compute_ranks + 1, w.policy, 7);
            let analytic = model.predict(&w, compute_ranks as u64);
            assert!(sim > 0.0);
            assert!(
                sim < last_time * 1.05,
                "simulated time should not grow with ranks: {sim} after {last_time}"
            );
            let ratio = sim / analytic;
            assert!(
                (0.2..=5.0).contains(&ratio),
                "{compute_ranks} ranks: simulated {sim} vs analytic {analytic}"
            );
            last_time = sim;
        }
    }

    #[test]
    fn simulated_weak_scaling_is_flat() {
        // The Fig 6 property, reproduced by discrete-event simulation:
        // SSets proportional to compute ranks, OnDemand policy.
        let profile = MachineProfile::bluegene_p();
        let mut times = Vec::new();
        for compute_ranks in [2usize, 4, 8] {
            let w = Workload {
                num_ssets: 64 * compute_ranks as u64,
                mem_steps: 6,
                generations: 30,
                pc_rate: 0.2,
                mutation_rate: 0.05,
                policy: FitnessPolicy::OnDemand,
            };
            times.push(simulate_run(&w, &profile, compute_ranks + 1, w.policy, 3));
        }
        let (min, max) = (
            times.iter().cloned().fold(f64::INFINITY, f64::min),
            times.iter().cloned().fold(0.0f64, f64::max),
        );
        assert!(
            max / min < 1.6,
            "weak scaling should stay near-flat: {times:?}"
        );
    }

    #[test]
    fn every_generation_policy_costs_more_than_on_demand() {
        let profile = MachineProfile::bluegene_p();
        let w = Workload {
            num_ssets: 128,
            mem_steps: 3,
            generations: 20,
            pc_rate: 0.1,
            mutation_rate: 0.05,
            policy: FitnessPolicy::EveryGeneration,
        };
        let every = simulate_run(&w, &profile, 5, FitnessPolicy::EveryGeneration, 1);
        let lazy = simulate_run(&w, &profile, 5, FitnessPolicy::OnDemand, 1);
        assert!(
            every > lazy * 3.0,
            "full evaluation {every} should dwarf on-demand {lazy}"
        );
    }
}
