//! Deterministic fault injection for the virtual cluster.
//!
//! The paper's production runs occupied up to 294,912 Blue Gene/P
//! processors for hours — a regime where node failure is a fact of life.
//! This module turns failure into a *reproducible input*: a [`FaultPlan`]
//! names, ahead of time, which ranks die at which generation and which
//! point-to-point sends the network drops, delays, or duplicates. The
//! distributed engine (`crate::dist`) executes the plan and must come out
//! the other side with a typed outcome — never a panic, never a hang
//! (docs/FAULT_TOLERANCE.md).
//!
//! # Determinism
//!
//! Random schedules are drawn from the dedicated [`Domain::Faults`] RNG
//! stream, disjoint by construction from every evolution stream
//! (`evo_core::rngstream`). Generating a fault plan therefore cannot
//! perturb a trajectory, and an empty plan leaves every code path
//! bit-identical to a run without fault support at all.

use evo_core::rngstream::{stream, Domain};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// What an injected network fault does to one point-to-point send.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// The message is lost in transit; the sender still observes success
    /// (detected downstream only by receive deadlines).
    Drop,
    /// Delivery is postponed past the sender's next send (reordered, never
    /// lost); tag matching must absorb it.
    Delay,
    /// The message is delivered twice; the protocol must tolerate stale
    /// duplicates.
    Duplicate,
}

/// One scheduled message fault: the `nth_send`-th logical send (0-based,
/// counted per sender across all destinations, collective traffic
/// included) issued by rank `src` suffers `action`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageFault {
    /// The sending rank whose send is faulted.
    pub src: usize,
    /// Per-sender logical send index the fault strikes.
    pub nth_send: u64,
    /// What happens to the message.
    pub action: FaultAction,
}

/// The transport-level fault schedule handed to
/// [`crate::comm::VirtualCluster::run_with_faults`]. Empty by default —
/// and an empty schedule is provably inert: the lookup misses and the
/// send path is the ordinary one.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageFaults {
    /// The scheduled faults, in no particular order.
    pub faults: Vec<MessageFault>,
}

impl MessageFaults {
    /// The action scheduled for `src`'s `nth` send, if any.
    pub fn action(&self, src: usize, nth: u64) -> Option<FaultAction> {
        self.faults
            .iter()
            .find(|f| f.src == src && f.nth_send == nth)
            .map(|f| f.action)
    }

    /// `true` when no message fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// A rank killed at the start of a generation — the paper's node failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankKill {
    /// The rank that dies.
    pub rank: usize,
    /// Generation (0-based) at whose start it dies.
    pub generation: u64,
}

/// The complete fault plan for one distributed run: rank kills, message
/// faults, and the receive deadline under which the engine detects lost
/// messages. Serialisable so a failing schedule can be recorded and
/// replayed exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Ranks killed at generation boundaries.
    #[serde(default)]
    pub kills: Vec<RankKill>,
    /// Transport-level message faults.
    #[serde(default)]
    pub messages: MessageFaults,
    /// Receive deadline in milliseconds applied to the engine's collective
    /// and fitness receives while this plan is active. `None` keeps
    /// receives blocking (still aliveness-aware, so rank kills are always
    /// detected); a deadline is required to detect *dropped* messages from
    /// still-alive peers.
    #[serde(default)]
    pub recv_timeout_ms: Option<u64>,
}

impl FaultPlan {
    /// A plan injecting nothing — the default for every ordinary run.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// `true` when the plan schedules no fault at all (a deadline alone
    /// does not make a plan non-empty).
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.messages.is_empty()
    }

    /// Whether `rank` is scheduled to die at the start of `generation`.
    pub fn kills_at(&self, rank: usize, generation: u64) -> bool {
        self.kills
            .iter()
            .any(|k| k.rank == rank && k.generation == generation)
    }

    /// Draw a random fault plan from the dedicated fault stream.
    ///
    /// The schedule is a pure function of `(seed, ranks, generations,
    /// num_kills, num_message_faults)` via
    /// `stream(seed, Domain::Faults, …)` — rerunning with the same inputs
    /// reproduces the same failures, and no evolution stream is touched.
    /// Kills target compute ranks only (`1..ranks`); the Nature Agent (rank
    /// 0) is the paper's records keeper and is killed only by explicit
    /// plans.
    pub fn seeded(
        seed: u64,
        ranks: usize,
        generations: u64,
        num_kills: usize,
        num_message_faults: usize,
    ) -> Self {
        assert!(ranks >= 2, "need the Nature Agent plus a compute rank");
        let mut rng = stream(seed, Domain::Faults, 0, 0);
        let kills = (0..num_kills)
            .map(|_| RankKill {
                rank: rng.random_range(1..ranks),
                generation: rng.random_range(0..generations.max(1)),
            })
            .collect();
        let faults = (0..num_message_faults)
            .map(|_| MessageFault {
                src: rng.random_range(0..ranks),
                nth_send: rng.random_range(0..64),
                action: match rng.random_range(0..3) {
                    0 => FaultAction::Drop,
                    1 => FaultAction::Delay,
                    _ => FaultAction::Duplicate,
                },
            })
            .collect();
        FaultPlan {
            kills,
            messages: MessageFaults { faults },
            recv_timeout_ms: Some(500),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_inert() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert!(!plan.kills_at(1, 0));
        assert_eq!(plan.messages.action(0, 0), None);
    }

    #[test]
    fn seeded_plans_are_reproducible() {
        let a = FaultPlan::seeded(7, 4, 100, 2, 3);
        let b = FaultPlan::seeded(7, 4, 100, 2, 3);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(8, 4, 100, 2, 3);
        assert_ne!(a, c, "different seeds give different schedules");
    }

    #[test]
    fn seeded_kills_spare_the_nature_agent() {
        for seed in 0..20 {
            let plan = FaultPlan::seeded(seed, 5, 50, 3, 0);
            assert!(plan.kills.iter().all(|k| k.rank >= 1 && k.rank < 5));
            assert!(plan.kills.iter().all(|k| k.generation < 50));
        }
    }

    #[test]
    fn fault_stream_is_disjoint_from_evolution_streams() {
        // Drawing a plan must not change what the Nature stream yields.
        use rand::Rng as _;
        let mut before = stream(42, Domain::Nature, 1, 0);
        let nature_before: u64 = before.random();
        let _plan = FaultPlan::seeded(42, 4, 100, 2, 2);
        let mut after = stream(42, Domain::Nature, 1, 0);
        let nature_after: u64 = after.random();
        assert_eq!(nature_before, nature_after);
    }

    #[test]
    fn plan_roundtrips_through_json() {
        let plan = FaultPlan::seeded(3, 4, 40, 1, 2);
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(plan, back);
        // Older configs without the new fields parse as the empty plan.
        let legacy: FaultPlan = serde_json::from_str("{}").unwrap();
        assert!(legacy.is_empty());
        assert_eq!(legacy.recv_timeout_ms, None);
    }

    #[test]
    fn message_fault_lookup_matches_exactly() {
        let faults = MessageFaults {
            faults: vec![MessageFault {
                src: 2,
                nth_send: 5,
                action: FaultAction::Drop,
            }],
        };
        assert_eq!(faults.action(2, 5), Some(FaultAction::Drop));
        assert_eq!(faults.action(2, 4), None);
        assert_eq!(faults.action(1, 5), None);
    }
}
