//! Virtual ranks and point-to-point messaging — the in-process MPI
//! stand-in.
//!
//! A [`VirtualCluster`] runs `P` *ranks*, each an OS thread holding a
//! [`Comm`] handle. Messages are typed envelopes delivered through
//! unbounded channels with the usual MPI guarantees: per-(sender, receiver)
//! ordering and tag-based matching with an out-of-order arrival buffer.
//! Failure injection (a rank can be killed) lets tests exercise the error
//! paths a real cluster would see.
//!
//! This module *is* the concurrency substrate, so it is exempted from the
//! atomics rule wholesale: the liveness flags and message counter below
//! model MPI runtime state, and nothing they gate feeds back into
//! simulation trajectories (rank order and message contents are fixed by
//! the deterministic protocol in `dist.rs`).

// detlint: allow-file(atomics, reason = "virtual-cluster substrate: liveness flags and message counters model the MPI runtime; protocol determinism is pinned by dist.rs tests")
use crate::faults::{FaultAction, MessageFaults};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A rank index in `0..size`.
pub type Rank = usize;

/// A message tag; collectives reserve tags ≥ [`Tag::MAX`]`/2`.
pub type Tag = u32;

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<T> {
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Matching tag.
    pub tag: Tag,
    /// Message body.
    pub payload: T,
}

/// Errors surfaced by the messaging layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The destination rank is dead (killed or exited): the paper's
    /// equivalent of a node failure.
    RankDead(Rank),
    /// A rank index was out of range.
    InvalidRank(Rank),
    /// The channel closed mid-receive (peer ranks all gone).
    Disconnected,
    /// A deadline receive expired before a matching message arrived — the
    /// signature of a lost (dropped) message from a still-alive peer.
    Timeout,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::RankDead(r) => write!(f, "rank {r} is dead"),
            ClusterError::InvalidRank(r) => write!(f, "rank {r} out of range"),
            ClusterError::Disconnected => write!(f, "all peers disconnected"),
            ClusterError::Timeout => write!(f, "receive deadline expired"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Per-cluster shared state.
struct Shared<T> {
    senders: Vec<Sender<Envelope<T>>>,
    alive: Vec<AtomicBool>,
    /// Total messages sent (communication-volume statistics for the
    /// perf-model validation).
    messages_sent: AtomicU64,
    /// Deterministic message-fault schedule (empty by default); looked up
    /// per (sender rank, per-sender send index).
    faults: MessageFaults,
}

/// A rank's communication handle. Cloneable only via the cluster spawn; one
/// handle per rank.
pub struct Comm<T> {
    rank: Rank,
    size: usize,
    shared: Arc<Shared<T>>,
    inbox: Receiver<Envelope<T>>,
    /// Arrived-but-unmatched messages, in arrival order.
    pending: Mutex<VecDeque<Envelope<T>>>,
    /// Logical sends issued by this rank (the key into the fault schedule).
    sends: Cell<u64>,
    /// Envelopes held back by a `Delay` fault; released after this rank's
    /// next send, or when the handle drops (delivery stays guaranteed).
    delayed: Mutex<Vec<Envelope<T>>>,
}

impl<T> Drop for Comm<T> {
    fn drop(&mut self) {
        // Release any still-delayed envelopes: a delay fault reorders
        // delivery, it never loses a message.
        for env in self.delayed.lock().drain(..) {
            let _ = self.shared.senders[env.dst].send(env);
        }
    }
}

impl<T> std::fmt::Debug for Comm<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}

/// How long an aliveness-aware blocking receive waits between re-checks of
/// the peer liveness flags. Purely a responsiveness knob: fault-free runs
/// never take the timeout branch, so the value cannot affect trajectories.
const ALIVENESS_POLL: Duration = Duration::from_millis(2);

impl<T: Send + Clone + 'static> Comm<T> {
    /// This rank's index.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `payload` to `dst` with `tag`. Errors if `dst` is dead or out
    /// of range. Sends are non-blocking (channels are unbounded), like the
    /// paper's non-blocking point-to-point returns along the torus.
    ///
    /// `messages_sent` and the obs comm counters record only *successful*
    /// logical sends — a send that fails (dead or invalid destination) is
    /// not counted, so manifests don't overcount under faults. A message
    /// consumed by an injected `Drop` fault still counts: the sender did
    /// its work, the network lost the message.
    pub fn send(&self, dst: Rank, tag: Tag, payload: T) -> Result<(), ClusterError> {
        if dst >= self.size {
            return Err(ClusterError::InvalidRank(dst));
        }
        if !self.shared.alive[dst].load(Ordering::Acquire) {
            return Err(ClusterError::RankDead(dst));
        }
        let nth = self.sends.get();
        self.sends.set(nth + 1);
        let env = Envelope {
            src: self.rank,
            dst,
            tag,
            payload,
        };
        // Envelopes delayed by *earlier* sends flush after this message —
        // "delayed past the sender's next message", reordered never lost.
        let flush: Vec<Envelope<T>> = self.delayed.lock().drain(..).collect();
        match self.shared.faults.action(self.rank, nth) {
            None => {
                self.shared.senders[dst]
                    .send(env)
                    .map_err(|_| ClusterError::RankDead(dst))?;
            }
            Some(FaultAction::Drop) => {
                // The network loses the message; the send itself succeeded.
                obs::counters().add_fault_injected();
            }
            Some(FaultAction::Duplicate) => {
                obs::counters().add_fault_injected();
                self.shared.senders[dst]
                    .send(env.clone())
                    .map_err(|_| ClusterError::RankDead(dst))?;
                self.shared.senders[dst]
                    .send(env)
                    .map_err(|_| ClusterError::RankDead(dst))?;
            }
            Some(FaultAction::Delay) => {
                obs::counters().add_fault_injected();
                self.delayed.lock().push(env);
            }
        }
        for old in flush {
            let d = old.dst;
            let _ = self.shared.senders[d].send(old);
        }
        self.shared.messages_sent.fetch_add(1, Ordering::Relaxed);
        // comm_bytes uses the in-memory size of the payload type — a
        // deliberate lower-bound approximation for heap-owning payloads
        // (docs/OBSERVABILITY.md documents the contract).
        obs::counters().add_comm_message(std::mem::size_of::<T>() as u64);
        Ok(())
    }

    /// Blocking receive of the next message matching `src`/`tag` filters
    /// (`None` = wildcard, like `MPI_ANY_SOURCE` / `MPI_ANY_TAG`).
    /// Non-matching arrivals are buffered and stay available to later
    /// receives in arrival order.
    ///
    /// Aliveness-aware: once the pending buffer and inbox are exhausted, a
    /// receive filtered on a dead source — or a wildcard receive with every
    /// peer dead — returns [`ClusterError::RankDead`] (resp.
    /// [`ClusterError::Disconnected`]) instead of blocking forever. Dying
    /// gasps are honoured: messages a rank sent *before* killing itself are
    /// still delivered (the kill's `Release` store ordering guarantees they
    /// are visible by the time the death is observed).
    pub fn recv(
        &self,
        src: Option<Rank>,
        tag: Option<Tag>,
    ) -> Result<Envelope<T>, ClusterError> {
        self.recv_until(src, tag, None)
    }

    /// [`Comm::recv`] with a relative deadline: fails with
    /// [`ClusterError::Timeout`] if no matching message arrives within
    /// `timeout`. The MPI-style primitive behind the engine's lost-message
    /// detection (docs/FAULT_TOLERANCE.md).
    pub fn recv_timeout(
        &self,
        src: Option<Rank>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Envelope<T>, ClusterError> {
        // detlint: allow(wall-clock, reason = "deadline arithmetic for fault detection; fault-free runs never reach a timeout branch")
        self.recv_until(src, tag, Some(Instant::now() + timeout))
    }

    /// [`Comm::recv_timeout`] with an absolute deadline.
    pub fn recv_deadline(
        &self,
        src: Option<Rank>,
        tag: Option<Tag>,
        deadline: Instant,
    ) -> Result<Envelope<T>, ClusterError> {
        self.recv_until(src, tag, Some(deadline))
    }

    /// Non-blocking receive: the next already-arrived matching message, or
    /// `None` when nothing matches right now.
    pub fn try_recv(&self, src: Option<Rank>, tag: Option<Tag>) -> Option<Envelope<T>> {
        let matches = |e: &Envelope<T>| {
            src.is_none_or(|s| e.src == s) && tag.is_none_or(|t| e.tag == t)
        };
        if let Some(env) = self.take_pending(&matches) {
            return Some(env);
        }
        self.drain_inbox(&matches)
    }

    /// Shared receive loop: pending buffer → inbox drain → aliveness check
    /// → bounded wait, until a match, a detected failure, or the deadline.
    fn recv_until(
        &self,
        src: Option<Rank>,
        tag: Option<Tag>,
        deadline: Option<Instant>,
    ) -> Result<Envelope<T>, ClusterError> {
        let matches = |e: &Envelope<T>| {
            src.is_none_or(|s| e.src == s) && tag.is_none_or(|t| e.tag == t)
        };
        if let Some(env) = self.take_pending(&matches) {
            return Ok(env);
        }
        loop {
            // Drain everything already delivered before deciding anything.
            if let Some(env) = self.drain_inbox(&matches) {
                return Ok(env);
            }
            // Aliveness: a dead filtered source (or, for wildcards, a fully
            // dead peer set) can never produce the message we wait for.
            // The drain above ran *after* any `Acquire`-observable death,
            // so dying-gasp messages have already been consumed.
            if let Some(err) = self.peer_failure(src) {
                if let Some(env) = self.drain_inbox(&matches) {
                    return Ok(env);
                }
                return Err(err);
            }
            // Wait a bounded slice so deaths and deadlines stay observable.
            // detlint: allow(wall-clock, reason = "deadline arithmetic for fault detection; fault-free runs never reach a timeout branch")
            let now = Instant::now();
            let mut wait = ALIVENESS_POLL;
            if let Some(d) = deadline {
                if now >= d {
                    obs::counters().add_comm_timeout();
                    return Err(ClusterError::Timeout);
                }
                wait = wait.min(d - now);
            }
            match self.inbox.recv_timeout(wait) {
                Ok(env) => {
                    if matches(&env) {
                        return Ok(env);
                    }
                    self.pending.lock().push_back(env);
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(ClusterError::Disconnected)
                }
            }
        }
    }

    /// Remove and return the first pending envelope matching `matches`.
    fn take_pending(&self, matches: &impl Fn(&Envelope<T>) -> bool) -> Option<Envelope<T>> {
        let mut pending = self.pending.lock();
        let pos = pending.iter().position(matches)?;
        // detlint: allow(panic-path, reason = "invariant: pos came from position() on the same queue under the same lock; remove cannot miss")
        Some(pending.remove(pos).expect("position just found"))
    }

    /// Move every already-delivered envelope out of the inbox; return the
    /// first match (later matches stay in the pending buffer in order).
    fn drain_inbox(&self, matches: &impl Fn(&Envelope<T>) -> bool) -> Option<Envelope<T>> {
        let mut found = None;
        while let Some(env) = self.inbox.try_recv() {
            if found.is_none() && matches(&env) {
                found = Some(env);
            } else {
                self.pending.lock().push_back(env);
            }
        }
        found
    }

    /// The error a receive filtered as `src` can no longer avoid, if any:
    /// the named source is dead, or (wildcard) every peer is dead.
    fn peer_failure(&self, src: Option<Rank>) -> Option<ClusterError> {
        match src {
            Some(s) => (!self.is_alive(s)).then_some(ClusterError::RankDead(s)),
            None => {
                let any_peer_alive = (0..self.size)
                    .any(|r| r != self.rank && self.shared.alive[r].load(Ordering::Acquire));
                (!any_peer_alive && self.size > 1).then_some(ClusterError::Disconnected)
            }
        }
    }

    /// Receive the next message regardless of source or tag.
    pub fn recv_any(&self) -> Result<Envelope<T>, ClusterError> {
        // detlint: allow(comm-discipline, reason = "the wildcard primitive itself: aliveness-aware (returns Disconnected when every peer is dead) and kept for diagnostics/tests; protocol code uses source-filtered, deadline-bound receives")
        self.recv(None, None)
    }

    /// Mark this rank dead (failure injection). Subsequent sends *to* it
    /// fail with [`ClusterError::RankDead`]. The rank's thread should
    /// return promptly after calling this.
    pub fn kill(&self) {
        self.shared.alive[self.rank].store(false, Ordering::Release);
    }

    /// Whether a rank is still alive.
    pub fn is_alive(&self, rank: Rank) -> bool {
        rank < self.size && self.shared.alive[rank].load(Ordering::Acquire)
    }

    /// Total messages sent across the whole cluster so far.
    pub fn cluster_messages_sent(&self) -> u64 {
        self.shared.messages_sent.load(Ordering::Relaxed)
    }
}

/// A virtual cluster: spawns `size` ranks as threads and joins them.
#[derive(Debug)]
pub struct VirtualCluster;

impl VirtualCluster {
    /// Run `body(comm)` on `size` ranks concurrently; returns each rank's
    /// result in rank order. Panics in a rank propagate after all ranks are
    /// joined.
    pub fn run<T, R, F>(size: usize, body: F) -> Vec<R>
    where
        T: Send + Clone + 'static,
        R: Send + 'static,
        F: Fn(Comm<T>) -> R + Send + Sync + 'static,
    {
        Self::run_with_faults(size, MessageFaults::default(), body)
    }

    /// [`VirtualCluster::run`] with a deterministic message-fault schedule
    /// injected at the transport (see [`crate::faults`]). An empty schedule
    /// behaves exactly like [`VirtualCluster::run`].
    pub fn run_with_faults<T, R, F>(size: usize, faults: MessageFaults, body: F) -> Vec<R>
    where
        T: Send + Clone + 'static,
        R: Send + 'static,
        F: Fn(Comm<T>) -> R + Send + Sync + 'static,
    {
        Self::run_with_faults_counted(size, faults, body).0
    }

    /// [`VirtualCluster::run_with_faults`], additionally returning the
    /// cluster-wide message total. The count is read **after every rank
    /// thread has joined**, so it is exact and schedule-independent —
    /// unlike [`Comm::cluster_messages_sent`] from inside a still-running
    /// rank, which can miss peers' in-flight final sends.
    pub fn run_with_faults_counted<T, R, F>(
        size: usize,
        faults: MessageFaults,
        body: F,
    ) -> (Vec<R>, u64)
    where
        T: Send + Clone + 'static,
        R: Send + 'static,
        F: Fn(Comm<T>) -> R + Send + Sync + 'static,
    {
        assert!(size > 0, "cluster needs at least one rank");
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            senders,
            alive: (0..size).map(|_| AtomicBool::new(true)).collect(),
            messages_sent: AtomicU64::new(0),
            faults,
        });
        let body = Arc::new(body);
        let handles: Vec<_> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| {
                let shared = Arc::clone(&shared);
                let body = Arc::clone(&body);
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .spawn(move || {
                        let comm = Comm {
                            rank,
                            size,
                            shared,
                            inbox,
                            pending: Mutex::new(VecDeque::new()),
                            sends: Cell::new(0),
                            delayed: Mutex::new(Vec::new()),
                        };
                        body(comm)
                    })
                    // detlint: allow(panic-path, reason = "invariant: thread spawn fails only on OS resource exhaustion at harness startup, before any protocol state exists; nothing to unwind into a typed outcome yet")
                    .expect("spawn rank thread")
            })
            .collect();
        let mut results = Vec::with_capacity(size);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(r) => results.push(r),
                Err(e) => panic = Some(e),
            }
        }
        if let Some(e) = panic {
            std::panic::resume_unwind(e);
        }
        let total = shared.messages_sent.load(Ordering::Relaxed);
        (results, total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_visits_every_rank() {
        // Each rank sends its rank id to the next; sum arrives intact.
        let results: Vec<usize> = VirtualCluster::run(8, |comm: Comm<usize>| {
            let next = (comm.rank() + 1) % comm.size();
            comm.send(next, 0, comm.rank()).unwrap();
            let env = comm.recv(None, Some(0)).unwrap();
            env.payload
        });
        let mut got = results.clone();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn point_to_point_ordering_preserved() {
        // Messages between a fixed (src, dst) pair with the same tag arrive
        // in send order.
        let results = VirtualCluster::run(2, |comm: Comm<u32>| {
            if comm.rank() == 0 {
                for i in 0..100 {
                    comm.send(1, 7, i).unwrap();
                }
                Vec::new()
            } else {
                (0..100)
                    .map(|_| comm.recv(Some(0), Some(7)).unwrap().payload)
                    .collect::<Vec<u32>>()
            }
        });
        assert_eq!(results[1], (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        let results = VirtualCluster::run(2, |comm: Comm<&'static str>| {
            if comm.rank() == 0 {
                comm.send(1, 1, "first-sent").unwrap();
                comm.send(1, 2, "second-sent").unwrap();
                String::new()
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let a = comm.recv(None, Some(2)).unwrap().payload;
                let b = comm.recv(None, Some(1)).unwrap().payload;
                format!("{a}|{b}")
            }
        });
        assert_eq!(results[1], "second-sent|first-sent");
    }

    #[test]
    fn source_matching_filters() {
        let results = VirtualCluster::run(3, |comm: Comm<usize>| {
            match comm.rank() {
                0 => {
                    comm.send(2, 0, 100).unwrap();
                    0
                }
                1 => {
                    comm.send(2, 0, 200).unwrap();
                    0
                }
                _ => {
                    // Ask for rank 1's message first.
                    let from1 = comm.recv(Some(1), None).unwrap().payload;
                    let from0 = comm.recv(Some(0), None).unwrap().payload;
                    from1 * 1000 + from0
                }
            }
        });
        assert_eq!(results[2], 200_100);
    }

    #[test]
    fn send_to_invalid_rank_errors() {
        VirtualCluster::run(2, |comm: Comm<u8>| {
            assert_eq!(comm.send(5, 0, 1), Err(ClusterError::InvalidRank(5)));
        });
    }

    #[test]
    fn send_to_dead_rank_errors() {
        // Rank 1 kills itself; rank 0 observes the death after a sync.
        VirtualCluster::run(2, |comm: Comm<u8>| {
            if comm.rank() == 1 {
                comm.kill();
                comm.send(0, 9, 1).unwrap(); // dying gasp still deliverable
            } else {
                comm.recv(Some(1), Some(9)).unwrap();
                assert!(!comm.is_alive(1));
                assert_eq!(comm.send(1, 0, 1), Err(ClusterError::RankDead(1)));
            }
        });
    }

    #[test]
    fn recv_from_dead_rank_errors_instead_of_hanging() {
        // The deadlock this layer used to have: rank 1 dies without a
        // gasp; rank 0's filtered receive must error, not block forever.
        VirtualCluster::run(3, |comm: Comm<u8>| {
            if comm.rank() == 1 {
                comm.kill();
            } else if comm.rank() == 0 {
                assert_eq!(
                    comm.recv(Some(1), Some(4)),
                    Err(ClusterError::RankDead(1))
                );
            }
        });
    }

    #[test]
    fn dying_gasp_beats_death_detection() {
        // A message sent before kill() must be returned, not eaten by the
        // aliveness check, no matter how late the receiver starts waiting.
        VirtualCluster::run(2, |comm: Comm<u8>| {
            if comm.rank() == 1 {
                comm.send(0, 9, 42).unwrap();
                comm.kill();
            } else {
                std::thread::sleep(std::time::Duration::from_millis(30));
                assert_eq!(comm.recv(Some(1), Some(9)).unwrap().payload, 42);
                // Nothing further can come: now the death is the answer.
                assert_eq!(comm.recv(Some(1), Some(9)), Err(ClusterError::RankDead(1)));
            }
        });
    }

    #[test]
    fn wildcard_recv_disconnects_when_all_peers_die() {
        VirtualCluster::run(3, |comm: Comm<u8>| {
            if comm.rank() == 0 {
                assert_eq!(comm.recv_any(), Err(ClusterError::Disconnected));
            } else {
                comm.kill();
            }
        });
    }

    #[test]
    fn recv_timeout_expires_on_silent_peer() {
        VirtualCluster::run(2, |comm: Comm<u8>| {
            if comm.rank() == 0 {
                let got = comm.recv_timeout(
                    Some(1),
                    Some(3),
                    std::time::Duration::from_millis(25),
                );
                assert_eq!(got, Err(ClusterError::Timeout));
                // Unblock rank 1's barrier-free exit.
                comm.send(1, 0, 1).unwrap();
            } else {
                comm.recv(Some(0), Some(0)).unwrap();
            }
        });
    }

    #[test]
    fn recv_timeout_returns_message_that_arrives_in_time() {
        VirtualCluster::run(2, |comm: Comm<u8>| {
            if comm.rank() == 1 {
                std::thread::sleep(std::time::Duration::from_millis(10));
                comm.send(0, 5, 7).unwrap();
            } else {
                let env = comm
                    .recv_timeout(Some(1), Some(5), std::time::Duration::from_secs(5))
                    .unwrap();
                assert_eq!(env.payload, 7);
            }
        });
    }

    #[test]
    fn try_recv_is_nonblocking_and_filters() {
        VirtualCluster::run(2, |comm: Comm<u8>| {
            if comm.rank() == 1 {
                comm.send(0, 1, 11).unwrap();
                comm.send(0, 2, 22).unwrap();
            } else {
                // Wait for both, then pick tag 2 first.
                let b = comm.recv(Some(1), Some(2)).unwrap();
                assert_eq!(b.payload, 22);
                let a = comm.try_recv(Some(1), Some(1));
                assert_eq!(a.unwrap().payload, 11);
                assert!(comm.try_recv(None, None).is_none());
            }
        });
    }

    #[test]
    fn failed_sends_are_not_counted() {
        let results = VirtualCluster::run(2, |comm: Comm<u8>| {
            if comm.rank() == 1 {
                comm.kill();
                comm.send(0, 0, 1).unwrap(); // sync: tell rank 0 we're dead
                0
            } else {
                comm.recv(Some(1), Some(0)).unwrap();
                let before = comm.cluster_messages_sent();
                assert_eq!(comm.send(1, 0, 9), Err(ClusterError::RankDead(1)));
                assert_eq!(comm.send(5, 0, 9), Err(ClusterError::InvalidRank(5)));
                comm.cluster_messages_sent() - before
            }
        });
        assert_eq!(results[0], 0, "failed sends must not increment the counter");
    }

    #[test]
    fn message_counter_counts_all_sends() {
        let results = VirtualCluster::run(4, |comm: Comm<u8>| {
            // Everyone sends one message to rank 0.
            if comm.rank() != 0 {
                comm.send(0, 0, 1).unwrap();
            } else {
                for _ in 0..3 {
                    comm.recv_any().unwrap();
                }
            }
            comm.cluster_messages_sent()
        });
        // After the barrier-free exchange, at least rank 0 observed 3 sends.
        assert!(results[0] >= 3);
    }

    #[test]
    fn large_payloads_cross_intact() {
        let big: Vec<u64> = (0..10_000).collect();
        let expect = big.clone();
        let results = VirtualCluster::run(2, move |comm: Comm<Vec<u64>>| {
            if comm.rank() == 0 {
                comm.send(1, 0, big.clone()).unwrap();
                Vec::new()
            } else {
                comm.recv_any().unwrap().payload
            }
        });
        assert_eq!(results[1], expect);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        VirtualCluster::run(0, |_c: Comm<u8>| ());
    }

    #[test]
    fn single_rank_cluster_works() {
        let r = VirtualCluster::run(1, |comm: Comm<u8>| comm.size());
        assert_eq!(r, vec![1]);
    }
}
