//! Virtual ranks and point-to-point messaging — the in-process MPI
//! stand-in.
//!
//! A [`VirtualCluster`] runs `P` *ranks*, each an OS thread holding a
//! [`Comm`] handle. Messages are typed envelopes delivered through
//! unbounded channels with the usual MPI guarantees: per-(sender, receiver)
//! ordering and tag-based matching with an out-of-order arrival buffer.
//! Failure injection (a rank can be killed) lets tests exercise the error
//! paths a real cluster would see.
//!
//! This module *is* the concurrency substrate, so it is exempted from the
//! atomics rule wholesale: the liveness flags and message counter below
//! model MPI runtime state, and nothing they gate feeds back into
//! simulation trajectories (rank order and message contents are fixed by
//! the deterministic protocol in `dist.rs`).

// detlint: allow-file(atomics, reason = "virtual-cluster substrate: liveness flags and message counters model the MPI runtime; protocol determinism is pinned by dist.rs tests")
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A rank index in `0..size`.
pub type Rank = usize;

/// A message tag; collectives reserve tags ≥ [`Tag::MAX`]`/2`.
pub type Tag = u32;

/// A delivered message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<T> {
    /// Sending rank.
    pub src: Rank,
    /// Receiving rank.
    pub dst: Rank,
    /// Matching tag.
    pub tag: Tag,
    /// Message body.
    pub payload: T,
}

/// Errors surfaced by the messaging layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// The destination rank is dead (killed or exited): the paper's
    /// equivalent of a node failure.
    RankDead(Rank),
    /// A rank index was out of range.
    InvalidRank(Rank),
    /// The channel closed mid-receive (peer ranks all gone).
    Disconnected,
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::RankDead(r) => write!(f, "rank {r} is dead"),
            ClusterError::InvalidRank(r) => write!(f, "rank {r} out of range"),
            ClusterError::Disconnected => write!(f, "all peers disconnected"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Per-cluster shared state.
struct Shared<T> {
    senders: Vec<Sender<Envelope<T>>>,
    alive: Vec<AtomicBool>,
    /// Total messages sent (communication-volume statistics for the
    /// perf-model validation).
    messages_sent: AtomicU64,
}

/// A rank's communication handle. Cloneable only via the cluster spawn; one
/// handle per rank.
pub struct Comm<T> {
    rank: Rank,
    size: usize,
    shared: Arc<Shared<T>>,
    inbox: Receiver<Envelope<T>>,
    /// Arrived-but-unmatched messages, in arrival order.
    pending: Mutex<VecDeque<Envelope<T>>>,
}

impl<T> std::fmt::Debug for Comm<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish_non_exhaustive()
    }
}

impl<T: Send + 'static> Comm<T> {
    /// This rank's index.
    #[inline]
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// Number of ranks in the cluster.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Send `payload` to `dst` with `tag`. Errors if `dst` is dead or out
    /// of range. Sends are non-blocking (channels are unbounded), like the
    /// paper's non-blocking point-to-point returns along the torus.
    pub fn send(&self, dst: Rank, tag: Tag, payload: T) -> Result<(), ClusterError> {
        if dst >= self.size {
            return Err(ClusterError::InvalidRank(dst));
        }
        if !self.shared.alive[dst].load(Ordering::Acquire) {
            return Err(ClusterError::RankDead(dst));
        }
        self.shared.messages_sent.fetch_add(1, Ordering::Relaxed);
        // comm_bytes uses the in-memory size of the payload type — a
        // deliberate lower-bound approximation for heap-owning payloads
        // (docs/OBSERVABILITY.md documents the contract).
        obs::counters().add_comm_message(std::mem::size_of::<T>() as u64);
        self.shared.senders[dst]
            .send(Envelope {
                src: self.rank,
                dst,
                tag,
                payload,
            })
            .map_err(|_| ClusterError::RankDead(dst))
    }

    /// Blocking receive of the next message matching `src`/`tag` filters
    /// (`None` = wildcard, like `MPI_ANY_SOURCE` / `MPI_ANY_TAG`).
    /// Non-matching arrivals are buffered and stay available to later
    /// receives in arrival order.
    pub fn recv(
        &self,
        src: Option<Rank>,
        tag: Option<Tag>,
    ) -> Result<Envelope<T>, ClusterError> {
        let matches = |e: &Envelope<T>| {
            src.is_none_or(|s| e.src == s) && tag.is_none_or(|t| e.tag == t)
        };
        {
            let mut pending = self.pending.lock();
            if let Some(pos) = pending.iter().position(&matches) {
                return Ok(pending.remove(pos).expect("position just found"));
            }
        }
        loop {
            let env = self.inbox.recv().map_err(|_| ClusterError::Disconnected)?;
            if matches(&env) {
                return Ok(env);
            }
            self.pending.lock().push_back(env);
        }
    }

    /// Receive the next message regardless of source or tag.
    pub fn recv_any(&self) -> Result<Envelope<T>, ClusterError> {
        self.recv(None, None)
    }

    /// Mark this rank dead (failure injection). Subsequent sends *to* it
    /// fail with [`ClusterError::RankDead`]. The rank's thread should
    /// return promptly after calling this.
    pub fn kill(&self) {
        self.shared.alive[self.rank].store(false, Ordering::Release);
    }

    /// Whether a rank is still alive.
    pub fn is_alive(&self, rank: Rank) -> bool {
        rank < self.size && self.shared.alive[rank].load(Ordering::Acquire)
    }

    /// Total messages sent across the whole cluster so far.
    pub fn cluster_messages_sent(&self) -> u64 {
        self.shared.messages_sent.load(Ordering::Relaxed)
    }
}

/// A virtual cluster: spawns `size` ranks as threads and joins them.
#[derive(Debug)]
pub struct VirtualCluster;

impl VirtualCluster {
    /// Run `body(comm)` on `size` ranks concurrently; returns each rank's
    /// result in rank order. Panics in a rank propagate after all ranks are
    /// joined.
    pub fn run<T, R, F>(size: usize, body: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(Comm<T>) -> R + Send + Sync + 'static,
    {
        assert!(size > 0, "cluster needs at least one rank");
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            senders,
            alive: (0..size).map(|_| AtomicBool::new(true)).collect(),
            messages_sent: AtomicU64::new(0),
        });
        let body = Arc::new(body);
        let handles: Vec<_> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, inbox)| {
                let shared = Arc::clone(&shared);
                let body = Arc::clone(&body);
                std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .spawn(move || {
                        let comm = Comm {
                            rank,
                            size,
                            shared,
                            inbox,
                            pending: Mutex::new(VecDeque::new()),
                        };
                        body(comm)
                    })
                    .expect("spawn rank thread")
            })
            .collect();
        let mut results = Vec::with_capacity(size);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok(r) => results.push(r),
                Err(e) => panic = Some(e),
            }
        }
        if let Some(e) = panic {
            std::panic::resume_unwind(e);
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_pass_visits_every_rank() {
        // Each rank sends its rank id to the next; sum arrives intact.
        let results: Vec<usize> = VirtualCluster::run(8, |comm: Comm<usize>| {
            let next = (comm.rank() + 1) % comm.size();
            comm.send(next, 0, comm.rank()).unwrap();
            let env = comm.recv(None, Some(0)).unwrap();
            env.payload
        });
        let mut got = results.clone();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn point_to_point_ordering_preserved() {
        // Messages between a fixed (src, dst) pair with the same tag arrive
        // in send order.
        let results = VirtualCluster::run(2, |comm: Comm<u32>| {
            if comm.rank() == 0 {
                for i in 0..100 {
                    comm.send(1, 7, i).unwrap();
                }
                Vec::new()
            } else {
                (0..100)
                    .map(|_| comm.recv(Some(0), Some(7)).unwrap().payload)
                    .collect::<Vec<u32>>()
            }
        });
        assert_eq!(results[1], (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn tag_matching_buffers_out_of_order() {
        let results = VirtualCluster::run(2, |comm: Comm<&'static str>| {
            if comm.rank() == 0 {
                comm.send(1, 1, "first-sent").unwrap();
                comm.send(1, 2, "second-sent").unwrap();
                String::new()
            } else {
                // Receive tag 2 first even though tag 1 arrived first.
                let a = comm.recv(None, Some(2)).unwrap().payload;
                let b = comm.recv(None, Some(1)).unwrap().payload;
                format!("{a}|{b}")
            }
        });
        assert_eq!(results[1], "second-sent|first-sent");
    }

    #[test]
    fn source_matching_filters() {
        let results = VirtualCluster::run(3, |comm: Comm<usize>| {
            match comm.rank() {
                0 => {
                    comm.send(2, 0, 100).unwrap();
                    0
                }
                1 => {
                    comm.send(2, 0, 200).unwrap();
                    0
                }
                _ => {
                    // Ask for rank 1's message first.
                    let from1 = comm.recv(Some(1), None).unwrap().payload;
                    let from0 = comm.recv(Some(0), None).unwrap().payload;
                    from1 * 1000 + from0
                }
            }
        });
        assert_eq!(results[2], 200_100);
    }

    #[test]
    fn send_to_invalid_rank_errors() {
        VirtualCluster::run(2, |comm: Comm<u8>| {
            assert_eq!(comm.send(5, 0, 1), Err(ClusterError::InvalidRank(5)));
        });
    }

    #[test]
    fn send_to_dead_rank_errors() {
        // Rank 1 kills itself; rank 0 observes the death after a sync.
        VirtualCluster::run(2, |comm: Comm<u8>| {
            if comm.rank() == 1 {
                comm.kill();
                comm.send(0, 9, 1).unwrap(); // dying gasp still deliverable
            } else {
                comm.recv(Some(1), Some(9)).unwrap();
                assert!(!comm.is_alive(1));
                assert_eq!(comm.send(1, 0, 1), Err(ClusterError::RankDead(1)));
            }
        });
    }

    #[test]
    fn message_counter_counts_all_sends() {
        let results = VirtualCluster::run(4, |comm: Comm<u8>| {
            // Everyone sends one message to rank 0.
            if comm.rank() != 0 {
                comm.send(0, 0, 1).unwrap();
            } else {
                for _ in 0..3 {
                    comm.recv_any().unwrap();
                }
            }
            comm.cluster_messages_sent()
        });
        // After the barrier-free exchange, at least rank 0 observed 3 sends.
        assert!(results[0] >= 3);
    }

    #[test]
    fn large_payloads_cross_intact() {
        let big: Vec<u64> = (0..10_000).collect();
        let expect = big.clone();
        let results = VirtualCluster::run(2, move |comm: Comm<Vec<u64>>| {
            if comm.rank() == 0 {
                comm.send(1, 0, big.clone()).unwrap();
                Vec::new()
            } else {
                comm.recv_any().unwrap().payload
            }
        });
        assert_eq!(results[1], expect);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_rejected() {
        VirtualCluster::run(0, |_c: Comm<u8>| ());
    }

    #[test]
    fn single_rank_cluster_works() {
        let r = VirtualCluster::run(1, |comm: Comm<u8>| comm.size());
        assert_eq!(r, vec![1]);
    }
}
