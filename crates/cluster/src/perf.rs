//! Analytic performance model for Blue Gene-scale extrapolation.
//!
//! The paper's evaluation ran on real Blue Gene/L (small studies, ≤ 2,048
//! processors) and Blue Gene/P (large studies, ≤ 294,912 processors)
//! hardware that we cannot execute on. This module models the per-
//! generation cost of the algorithm in LogGP style:
//!
//! ```text
//! T(P) = penalty(P) · G · [ games/gen · c_game(mem) / P        (compute)
//!                         + n_bcast(gen) · depth(P) · α_coll   (collectives)
//!                         + pc_rate · 2 · (α_p2p + h̄(P) · c_hop) (fitness p2p)
//!                         + μ · depth(P) · (α_coll + states·c_state) (mutation)
//!                         + t_serial ]                          (Nature Agent)
//! ```
//!
//! where `depth(P) = ⌈log₂ P⌉` is the collective-tree depth, `h̄(P)` the
//! mean torus hop count from [`crate::topology`], and `penalty(P)` the
//! non-power-of-two mapping penalty (§VI-D's 15%).
//!
//! Calibration paths:
//!
//! 1. [`MachineProfile::bluegene_l`]/[`MachineProfile::bluegene_p`] carry
//!    *effective* constants chosen to reproduce the paper's published
//!    runtimes (they absorb load imbalance and serial overheads, and are
//!    documented as such — not as hardware datasheet numbers).
//! 2. [`fit_strong_scaling`] least-squares-fits per-row constants directly
//!    to observed `(P, seconds)` points (the embedded paper tables), which
//!    is how the `table6`/`table7` regenerators produce their model rows.
//! 3. [`measure_game_cost`] times the real local Rust kernel so local
//!    profiles report this machine's actual game costs.

use crate::topology::{CollectiveTree, Torus3D};
use evo_core::fitness::FitnessPolicy;
use ipd::game::{play_deterministic, play_with_lookup, GameConfig, StateLookup};
use ipd::state::{StateSpace, StateTable};
use ipd::strategy::{PureStrategy, Strategy};
use serde::{Deserialize, Serialize};

/// The workload whose runtime is being predicted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Number of SSets `S`.
    pub num_ssets: u64,
    /// Memory steps (0..=6).
    pub mem_steps: usize,
    /// Generations `G`.
    pub generations: u64,
    /// Pairwise-comparison rate.
    pub pc_rate: f64,
    /// Mutation rate μ.
    pub mutation_rate: f64,
    /// Fitness evaluation policy: `EveryGeneration` plays all `S²` games
    /// each generation (the paper's small studies); `OnDemand` plays only
    /// the selected teacher's and learner's `2S` games in PC generations —
    /// the only reading under which the paper's flat weak scaling at
    /// `S = 4096·P` is arithmetically possible (see DESIGN.md).
    pub policy: FitnessPolicy,
}

impl Workload {
    /// Expected iterated games per generation under the policy.
    pub fn games_per_generation(&self) -> f64 {
        match self.policy {
            FitnessPolicy::EveryGeneration => (self.num_ssets as f64) * (self.num_ssets as f64),
            FitnessPolicy::OnDemand => self.pc_rate * 2.0 * self.num_ssets as f64,
        }
    }

    /// The paper's small-study workload (§VI-B): `S` SSets, 1,000
    /// generations, PC rate 0.01, all games every generation.
    pub fn small_study(mem_steps: usize, num_ssets: u64) -> Self {
        Workload {
            num_ssets,
            mem_steps,
            generations: 1_000,
            pc_rate: 0.01,
            mutation_rate: 0.05,
            policy: FitnessPolicy::EveryGeneration,
        }
    }

    /// The paper's large-study workload (§VI-C): memory-six, PC rate 0.01,
    /// on-demand fitness.
    pub fn large_study(num_ssets: u64, generations: u64) -> Self {
        Workload {
            num_ssets,
            mem_steps: 6,
            generations,
            pc_rate: 0.01,
            mutation_rate: 0.05,
            policy: FitnessPolicy::OnDemand,
        }
    }
}

/// Effective machine constants for the model. The Blue Gene profiles'
/// values are *fitted effective* parameters reproducing the paper's
/// published tables — they fold load imbalance and implementation overheads
/// into the latency terms rather than quoting hardware datasheets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineProfile {
    /// Profile name for reports.
    pub name: String,
    /// Seconds per iterated game (200 rounds) by memory steps 0..=6.
    pub game_cost: [f64; 7],
    /// Per-tree-level latency of a collective operation (seconds).
    pub alpha_coll: f64,
    /// Point-to-point message latency (seconds).
    pub alpha_p2p: f64,
    /// Per-hop torus transit cost (seconds).
    pub per_hop: f64,
    /// Per-state cost of broadcasting a mutated strategy (bandwidth term).
    pub mutation_per_state: f64,
    /// Nature Agent serial work + bookkeeping per generation (seconds).
    pub serial_per_gen: f64,
    /// Fractional slowdown applied to non-power-of-two partitions
    /// (the paper's §VI-D reports 15% ⇒ 0.15).
    pub nonpow2_penalty: f64,
}

impl MachineProfile {
    /// Effective Blue Gene/L profile for the paper's *small* studies
    /// (Tables VI & VII, Figures 3–5). Game costs derive from the paper's
    /// Table VI `P = 128` column (compute-dominated cells); the overhead
    /// constants absorb imbalance at low SSets-per-processor counts.
    pub fn bluegene_l() -> Self {
        // cg(m) ≈ T_paper(128) · 128 · 0.7 / (G · S²) with S = 1024,
        // G = 1000: the 0.7 factor leaves 30% for overheads that the
        // constant/log terms carry.
        MachineProfile {
            name: "BlueGene/L (effective, fitted to Tables VI-VII)".into(),
            game_cost: [
                1.1e-6, // memory-0: below the paper's smallest measured case
                2.26e-6, 1.88e-4, 2.05e-4, 2.63e-4, 6.75e-4, 7.42e-4,
            ],
            alpha_coll: 1.7e-4,
            alpha_p2p: 8.0e-6,
            per_hop: 1.0e-7,
            mutation_per_state: 6.0e-9,
            serial_per_gen: 1.0e-3,
            nonpow2_penalty: 0.15,
        }
    }

    /// Effective Blue Gene/P profile for the paper's *large* studies
    /// (Figures 6 & 7): fast dedicated collective network, memory-six
    /// games with the paper's linear state scan.
    pub fn bluegene_p() -> Self {
        MachineProfile {
            name: "BlueGene/P (effective, large studies)".into(),
            game_cost: [
                0.9e-6, 1.9e-6, 1.6e-4, 1.75e-4, 2.2e-4, 5.7e-4, 1.06e-3,
            ],
            alpha_coll: 3.0e-6,
            alpha_p2p: 3.0e-6,
            per_hop: 5.0e-8,
            mutation_per_state: 4.0e-9,
            serial_per_gen: 2.0e-6,
            nonpow2_penalty: 0.15,
        }
    }

    /// Profile with this machine's actually measured game-kernel costs
    /// (per memory step, using the paper's linear state scan when
    /// `linear_scan`), keeping Blue Gene/P communication constants.
    pub fn measured_local(rounds: u32, linear_scan: bool) -> Self {
        let mut p = Self::bluegene_p();
        p.name = format!(
            "local kernel ({} lookup) + BG/P network",
            if linear_scan { "linear-scan" } else { "O(1)" }
        );
        for (mem, slot) in p.game_cost.iter_mut().enumerate() {
            *slot = measure_game_cost(mem, rounds, linear_scan);
        }
        p
    }
}

/// Per-generation cost breakdown of a prediction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Parallel game-dynamics compute per generation (seconds).
    pub compute: f64,
    /// Communication (collectives + point-to-point) per generation.
    pub comm: f64,
    /// Nature Agent serial time per generation.
    pub serial: f64,
    /// Multiplicative mapping penalty applied (1.0 for powers of two).
    pub penalty: f64,
    /// Total predicted wall-clock for the whole run (seconds).
    pub total: f64,
}

/// The analytic model: a profile applied to workloads.
#[derive(Debug, Clone)]
pub struct PerfModel {
    /// Machine constants in effect.
    pub profile: MachineProfile,
}

impl PerfModel {
    /// Model with the given profile.
    pub fn new(profile: MachineProfile) -> Self {
        PerfModel { profile }
    }

    /// Full per-generation breakdown and run total for `procs` processors.
    pub fn breakdown(&self, w: &Workload, procs: u64) -> Breakdown {
        let _span = obs::span("perf.breakdown");
        obs::counters().add_perf_model_eval();
        assert!(procs >= 1);
        let p = &self.profile;
        let depth = CollectiveTree::new(procs as usize).depth() as f64;
        let torus = Torus3D::balanced(procs as usize);
        let states = StateSpace::new(w.mem_steps)
            .expect("valid memory steps")
            .num_states() as f64;

        let compute = w.games_per_generation() * p.game_cost[w.mem_steps] / procs as f64;
        // One schedule broadcast every generation; PC adds two fitness
        // returns and an outcome broadcast; mutation adds a payload-bearing
        // broadcast.
        let comm = depth * p.alpha_coll
            + w.pc_rate
                * (2.0 * (p.alpha_p2p + torus.mean_hops() * p.per_hop) + depth * p.alpha_coll)
            + w.mutation_rate * depth * (p.alpha_coll + states * p.mutation_per_state);
        let serial = p.serial_per_gen;
        let penalty = if (procs as usize).is_power_of_two() {
            1.0
        } else {
            1.0 + p.nonpow2_penalty
        };
        let total = penalty * w.generations as f64 * (compute + comm + serial);
        Breakdown {
            compute,
            comm,
            serial,
            penalty,
            total,
        }
    }

    /// Predicted wall-clock seconds for the whole run.
    pub fn predict(&self, w: &Workload, procs: u64) -> f64 {
        self.breakdown(w, procs).total
    }

    /// Strong-scaling speedup of `procs` relative to `base` processors.
    pub fn speedup(&self, w: &Workload, base: u64, procs: u64) -> f64 {
        self.predict(w, base) / self.predict(w, procs)
    }

    /// Strong-scaling parallel efficiency relative to `base`: the "percent
    /// of ideal speedup achieved for each processor count" (§VI-B1).
    pub fn efficiency(&self, w: &Workload, base: u64, procs: u64) -> f64 {
        self.speedup(w, base, procs) * base as f64 / procs as f64
    }

    /// Weak-scaling series: for each processor count, the predicted
    /// runtime of the workload scaled to `ssets_per_proc · P` SSets
    /// (paper Fig 6: 4,096 SSets per processor).
    pub fn weak_scaling(
        &self,
        template: &Workload,
        ssets_per_proc: u64,
        procs: &[u64],
    ) -> Vec<(u64, f64)> {
        procs
            .iter()
            .map(|&p| {
                let w = Workload {
                    num_ssets: ssets_per_proc * p,
                    ..*template
                };
                (p, self.predict(&w, p))
            })
            .collect()
    }
}

/// Time the real game kernel: seconds per iterated game of `rounds` rounds
/// at `mem_steps`, with the paper's linear state scan or the O(1) rolling
/// index. This is the measurement feeding Fig 4's local reproduction.
pub fn measure_game_cost(mem_steps: usize, rounds: u32, linear_scan: bool) -> f64 {
    use rand::SeedableRng;
    let space = StateSpace::new(mem_steps).expect("valid memory steps");
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0xC0FFEE);
    let a = PureStrategy::random(space, &mut rng);
    let b = PureStrategy::random(space, &mut rng);
    let cfg = GameConfig {
        rounds,
        ..GameConfig::default()
    };
    let table = linear_scan.then(|| StateTable::new(space));
    let sa = Strategy::Pure(a.clone());
    let sb = Strategy::Pure(b.clone());
    let run_one = |rng: &mut rand_chacha::ChaCha8Rng| -> f64 {
        match &table {
            Some(t) => {
                play_with_lookup(&space, &sa, &sb, &cfg, StateLookup::LinearScan(t), rng).fitness_a
            }
            None => play_deterministic(&space, &a, &b, &cfg).fitness_a,
        }
    };
    // Warm up, then time enough games for a stable estimate.
    let mut sink = 0.0;
    for _ in 0..3 {
        sink += run_one(&mut rng);
    }
    let iters: u32 = if linear_scan && mem_steps >= 5 {
        20
    } else if linear_scan && mem_steps >= 3 {
        100
    } else {
        400
    };
    // detlint: allow(wall-clock, reason = "calibration measurement for the performance model; feeds simulated time, not trajectories")
    let start = std::time::Instant::now();
    for _ in 0..iters {
        sink += run_one(&mut rng);
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(sink);
    elapsed / iters as f64
}

/// A per-row strong-scaling fit: `T(P) ≈ G·(work·game_cost/P + const +
/// log_cost·depth(P))`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FittedRow {
    /// Seconds per work unit (game).
    pub game_cost: f64,
    /// Constant per-generation overhead (seconds).
    pub const_cost: f64,
    /// Per-tree-level per-generation overhead (seconds).
    pub log_cost: f64,
    /// Root-mean-square relative error of the fit over the input points.
    pub rms_rel_error: f64,
}

impl FittedRow {
    /// Predicted total seconds at `procs`.
    pub fn predict(&self, work_units: f64, generations: u64, procs: u64) -> f64 {
        let depth = CollectiveTree::new(procs as usize).depth() as f64;
        generations as f64
            * (work_units * self.game_cost / procs as f64 + self.const_cost + self.log_cost * depth)
    }
}

/// Least-squares fit of the three-term strong-scaling model to observed
/// `(procs, total_seconds)` points for a fixed workload of `work_units`
/// games per generation over `generations` generations. Negative fitted
/// coefficients are clamped to zero and the remaining terms refitted, so
/// the result is always physically meaningful.
pub fn fit_strong_scaling(points: &[(u64, f64)], work_units: f64, generations: u64) -> FittedRow {
    assert!(points.len() >= 3, "need at least three points for a 3-term fit");
    let g = generations as f64;
    let basis = |p: u64| -> [f64; 3] {
        let depth = CollectiveTree::new(p as usize).depth() as f64;
        [g * work_units / p as f64, g, g * depth]
    };
    // Try fits over subsets of active terms, preferring the full model,
    // until all coefficients are non-negative.
    let masks: [[bool; 3]; 4] = [
        [true, true, true],
        [true, false, true],
        [true, true, false],
        [true, false, false],
    ];
    for mask in masks {
        if let Some(coef) = solve_ls(points, &basis, mask) {
            if coef.iter().all(|&c| c >= 0.0) {
                let row = FittedRow {
                    game_cost: coef[0],
                    const_cost: coef[1],
                    log_cost: coef[2],
                    rms_rel_error: 0.0,
                };
                let rms = rms_rel_error(points, work_units, generations, &row);
                return FittedRow {
                    rms_rel_error: rms,
                    ..row
                };
            }
        }
    }
    // Degenerate data: fall back to a pure 1/P work fit through the first
    // point.
    let (p0, t0) = points[0];
    let row = FittedRow {
        game_cost: t0 * p0 as f64 / (g * work_units),
        const_cost: 0.0,
        log_cost: 0.0,
        rms_rel_error: 0.0,
    };
    let rms = rms_rel_error(points, work_units, generations, &row);
    FittedRow {
        rms_rel_error: rms,
        ..row
    }
}

fn rms_rel_error(
    points: &[(u64, f64)],
    work_units: f64,
    generations: u64,
    row: &FittedRow,
) -> f64 {
    let n = points.len() as f64;
    (points
        .iter()
        .map(|&(p, t)| {
            let e = (row.predict(work_units, generations, p) - t) / t;
            e * e
        })
        .sum::<f64>()
        / n)
        .sqrt()
}

/// Solve the masked 3-term linear least squares via normal equations.
/// Returns `None` if the system is singular.
fn solve_ls(
    points: &[(u64, f64)],
    basis: &dyn Fn(u64) -> [f64; 3],
    mask: [bool; 3],
) -> Option<[f64; 3]> {
    let idx: Vec<usize> = (0..3).filter(|&i| mask[i]).collect();
    let k = idx.len();
    let mut ata = [[0.0f64; 3]; 3];
    let mut atb = [0.0f64; 3];
    for &(p, t) in points {
        let b = basis(p);
        for (r, &i) in idx.iter().enumerate() {
            atb[r] += b[i] * t;
            for (c, &j) in idx.iter().enumerate() {
                ata[r][c] += b[i] * b[j];
            }
        }
    }
    // Gaussian elimination with partial pivoting on the k×k system.
    let mut a = ata;
    let mut y = atb;
    let mut x_packed = [0.0f64; 3];
    for col in 0..k {
        let pivot =
            (col..k).max_by(|&r1, &r2| a[r1][col].abs().total_cmp(&a[r2][col].abs()))?;
        if a[pivot][col].abs() < 1e-30 {
            return None;
        }
        a.swap(col, pivot);
        y.swap(col, pivot);
        let pivot_row = a[col];
        for row in col + 1..k {
            let f = a[row][col] / pivot_row[col];
            for (x, p) in a[row][col..k].iter_mut().zip(&pivot_row[col..k]) {
                *x -= f * p;
            }
            y[row] -= f * y[col];
        }
    }
    for col in (0..k).rev() {
        let mut v = y[col];
        for c in col + 1..k {
            v -= a[col][c] * x_packed[c];
        }
        x_packed[col] = v / a[col][col];
    }
    // Scatter back to the full 3-vector.
    let mut x = [0.0f64; 3];
    for (pos, &i) in idx.iter().enumerate() {
        x[i] = x_packed[pos];
    }
    Some(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(mem: usize, ssets: u64) -> Workload {
        Workload::small_study(mem, ssets)
    }

    #[test]
    fn games_per_generation_by_policy() {
        let every = small(1, 1_024);
        assert_eq!(every.games_per_generation(), 1_024.0 * 1_024.0);
        let lazy = Workload::large_study(4_096, 1_000);
        assert_eq!(lazy.games_per_generation(), 0.01 * 2.0 * 4_096.0);
    }

    #[test]
    fn more_processors_never_slower_within_powers_of_two() {
        let m = PerfModel::new(MachineProfile::bluegene_l());
        let w = small(6, 1_024);
        let mut last = f64::INFINITY;
        for p in [128u64, 256, 512, 1_024, 2_048] {
            let t = m.predict(&w, p);
            assert!(t < last, "P={p}: {t} ≥ {last}");
            last = t;
        }
    }

    #[test]
    fn efficiency_decreases_with_procs_and_stays_in_range() {
        let m = PerfModel::new(MachineProfile::bluegene_l());
        let w = small(1, 1_024);
        let mut last = 1.01;
        for p in [128u64, 256, 512, 1_024, 2_048] {
            let e = m.efficiency(&w, 128, p);
            assert!(e <= last + 1e-9, "efficiency must not increase");
            assert!(e > 0.0 && e <= 1.0 + 1e-9);
            last = e;
        }
    }

    #[test]
    fn runtime_increases_with_memory_steps() {
        let m = PerfModel::new(MachineProfile::bluegene_l());
        let mut last = 0.0;
        for mem in 1..=6 {
            let t = m.predict(&small(mem, 1_024), 512);
            assert!(t > last, "memory-{mem}");
            last = t;
        }
    }

    #[test]
    fn runtime_grows_with_square_of_ssets() {
        // Table VII's shape: 2x SSets ⇒ ~4x runtime in the compute-bound
        // regime.
        let m = PerfModel::new(MachineProfile::bluegene_l());
        let t1 = m.predict(&small(1, 8_192), 256);
        let t2 = m.predict(&small(1, 16_384), 256);
        let ratio = t2 / t1;
        assert!((3.5..=4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn bigger_populations_scale_better() {
        // Fig 5: parallel efficiency at 2,048 procs improves with S.
        let m = PerfModel::new(MachineProfile::bluegene_l());
        let small_pop = m.efficiency(&small(1, 1_024), 256, 2_048);
        let large_pop = m.efficiency(&small(1, 32_768), 256, 2_048);
        assert!(
            large_pop > small_pop,
            "large {large_pop} ≤ small {small_pop}"
        );
        assert!(large_pop > 0.9, "32k SSets should scale near-ideally");
    }

    #[test]
    fn weak_scaling_is_flat_for_large_study() {
        // Fig 6: 4,096 SSets/processor, memory-six, on-demand fitness —
        // runtime "fluctuated by at most 1 second" from 1,024 to 262,144
        // processors.
        let m = PerfModel::new(MachineProfile::bluegene_p());
        let template = Workload::large_study(0, 1_000);
        let series =
            m.weak_scaling(&template, 4_096, &[1_024, 4_096, 16_384, 65_536, 262_144]);
        let t0 = series[0].1;
        for &(p, t) in &series {
            assert!(
                (t - t0).abs() < 1.0,
                "P={p}: {t}s vs baseline {t0}s drifts over 1s"
            );
        }
    }

    #[test]
    fn strong_scaling_large_study_matches_paper_shape() {
        // Fig 7: fixed problem from the 1,024-proc weak-scaling point
        // (4,096 SSets/proc ⇒ S = 4,194,304). 99% efficiency through
        // 16,384 procs, ~82% at 262,144.
        let m = PerfModel::new(MachineProfile::bluegene_p());
        let w = Workload::large_study(4_096 * 1_024, 1_000);
        let e16k = m.efficiency(&w, 1_024, 16_384);
        let e262k = m.efficiency(&w, 1_024, 262_144);
        assert!(e16k > 0.97, "16K procs: {e16k}");
        assert!((0.75..=0.90).contains(&e262k), "262K procs: {e262k}");
    }

    #[test]
    fn nonpow2_partition_pays_mapping_penalty() {
        // §VI-D: 72 racks (294,912 cores) degraded ~15% vs 64 racks.
        let m = PerfModel::new(MachineProfile::bluegene_p());
        let w = Workload::large_study(4_096 * 1_024, 1_000);
        let b_pow2 = m.breakdown(&w, 262_144);
        let b_full = m.breakdown(&w, 294_912);
        assert_eq!(b_pow2.penalty, 1.0);
        assert!((b_full.penalty - 1.15).abs() < 1e-12);
        let e_full = m.efficiency(&w, 1_024, 294_912);
        let e_pow2 = m.efficiency(&w, 1_024, 262_144);
        assert!(e_full < e_pow2, "penalised partition must be less efficient");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = PerfModel::new(MachineProfile::bluegene_l());
        let w = small(3, 2_048);
        let b = m.breakdown(&w, 512);
        let expect = b.penalty * w.generations as f64 * (b.compute + b.comm + b.serial);
        assert!((b.total - expect).abs() < 1e-9);
    }

    #[test]
    fn fit_recovers_synthetic_constants() {
        // Generate data from known constants; the fit must recover them.
        let truth = FittedRow {
            game_cost: 5.0e-6,
            const_cost: 2.0e-3,
            log_cost: 1.5e-4,
            rms_rel_error: 0.0,
        };
        let work = 1_024.0 * 1_024.0;
        let gens = 1_000;
        let points: Vec<(u64, f64)> = [128u64, 256, 512, 1_024, 2_048]
            .iter()
            .map(|&p| (p, truth.predict(work, gens, p)))
            .collect();
        let fit = fit_strong_scaling(&points, work, gens);
        assert!((fit.game_cost - truth.game_cost).abs() / truth.game_cost < 1e-6);
        assert!((fit.const_cost - truth.const_cost).abs() / truth.const_cost < 1e-6);
        assert!((fit.log_cost - truth.log_cost).abs() / truth.log_cost < 1e-6);
        assert!(fit.rms_rel_error < 1e-9);
    }

    #[test]
    fn fit_clamps_negative_terms() {
        // Pure 1/P data with a slight wobble: const/log terms must not go
        // negative.
        let work = 1.0e6;
        let gens = 100;
        let points: Vec<(u64, f64)> = [64u64, 128, 256, 512]
            .iter()
            .map(|&p| (p, gens as f64 * work * 3.0e-6 / p as f64 * 1.001))
            .collect();
        let fit = fit_strong_scaling(&points, work, gens);
        assert!(fit.game_cost > 0.0);
        assert!(fit.const_cost >= 0.0);
        assert!(fit.log_cost >= 0.0);
    }

    #[test]
    fn fit_paper_table6_memory_one_row() {
        // The fit against the paper's own Table VI memory-one row should
        // land within ~35% RMS (the row contains a superlinear 256→512
        // step no smooth model can hit exactly).
        let points = [
            (128u64, 26.5),
            (256, 13.6),
            (512, 5.9),
            (1_024, 4.59),
            (2_048, 4.04),
        ];
        let fit = fit_strong_scaling(&points, 1_024.0 * 1_024.0, 1_000);
        assert!(fit.rms_rel_error < 0.35, "rms {}", fit.rms_rel_error);
        // And the fitted game cost lands in a physically sane band.
        assert!(fit.game_cost > 1.0e-7 && fit.game_cost < 1.0e-4);
    }

    #[test]
    fn measured_local_game_cost_increases_with_linear_scan() {
        // The paper's Fig 4 claim: state identification dominates runtime
        // growth. The linear scan must cost visibly more at memory-4 than
        // the O(1) index.
        let fast = measure_game_cost(4, 50, false);
        let slow = measure_game_cost(4, 50, true);
        assert!(
            slow > fast * 2.0,
            "linear scan {slow} not sufficiently slower than rolling {fast}"
        );
    }

    #[test]
    fn measure_game_cost_returns_positive() {
        for mem in 0..=2 {
            let c = measure_game_cost(mem, 20, false);
            assert!(c > 0.0 && c < 1.0, "memory-{mem}: {c}");
        }
    }
}
