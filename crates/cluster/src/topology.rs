//! Interconnect geometry: the 3-D torus and the collective tree.
//!
//! Blue Gene/P couples a 3-D torus for point-to-point traffic with a
//! dedicated tree network for collectives (§V). The performance model needs
//! three geometric quantities from this module: point-to-point hop counts
//! on the torus, the collective tree depth (`⌈log₂ P⌉`), and the *mapping
//! dilation* that makes non-power-of-two partitions slower — the paper saw
//! "a 15% degradation in efficiency" on the full 72-rack, 294,912-core
//! machine because "a partition size that is not a power of two negatively
//! impacts the mapping of our algorithm to the hardware topology" (§VI-D).

use serde::{Deserialize, Serialize};

/// A 3-D torus of `x × y × z` nodes with wraparound links.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Torus3D {
    /// Nodes along X.
    pub x: usize,
    /// Nodes along Y.
    pub y: usize,
    /// Nodes along Z.
    pub z: usize,
}

impl Torus3D {
    /// A torus with the given dimensions (all ≥ 1).
    pub fn new(x: usize, y: usize, z: usize) -> Self {
        assert!(x >= 1 && y >= 1 && z >= 1, "torus dims must be ≥ 1");
        Torus3D { x, y, z }
    }

    /// The most-cubic torus for `n` nodes: factors `n` into `x ≥ y ≥ z`
    /// minimising the surface, the shape partition allocators prefer.
    /// Falls back to a flat shape when `n` has poor factorisations (which
    /// is precisely what hurts non-power-of-two partitions).
    pub fn balanced(n: usize) -> Self {
        assert!(n >= 1);
        let mut best = (n, 1, 1);
        let mut best_score = usize::MAX;
        // Enumerate factor triples x*y*z = n.
        let mut x = 1;
        while x * x * x <= n {
            if n.is_multiple_of(x) {
                let rest = n / x;
                let mut y = x;
                while y * y <= rest {
                    if rest.is_multiple_of(y) {
                        let z = rest / y;
                        // Perimeter-like score: smaller = more cubic.
                        let score = x * y + y * z + x * z;
                        if score < best_score {
                            best_score = score;
                            best = (z, y, x); // largest first
                        }
                    }
                    y += 1;
                }
            }
            x += 1;
        }
        Torus3D::new(best.0, best.1, best.2)
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.x * self.y * self.z
    }

    /// `true` only for the degenerate 0-node case (cannot occur through the
    /// constructors).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rank → coordinate (row-major: x fastest).
    pub fn coord(&self, rank: usize) -> (usize, usize, usize) {
        assert!(rank < self.len(), "rank {rank} out of range");
        let cx = rank % self.x;
        let cy = (rank / self.x) % self.y;
        let cz = rank / (self.x * self.y);
        (cx, cy, cz)
    }

    /// Coordinate → rank.
    pub fn rank(&self, c: (usize, usize, usize)) -> usize {
        assert!(c.0 < self.x && c.1 < self.y && c.2 < self.z);
        c.0 + c.1 * self.x + c.2 * self.x * self.y
    }

    /// Shortest-path hops between two ranks with wraparound.
    pub fn hops(&self, a: usize, b: usize) -> usize {
        let ca = self.coord(a);
        let cb = self.coord(b);
        let d = |p: usize, q: usize, n: usize| {
            let diff = p.abs_diff(q);
            diff.min(n - diff)
        };
        d(ca.0, cb.0, self.x) + d(ca.1, cb.1, self.y) + d(ca.2, cb.2, self.z)
    }

    /// Maximum hop distance in the torus (its diameter).
    pub fn diameter(&self) -> usize {
        self.x / 2 + self.y / 2 + self.z / 2
    }

    /// Mean hop distance from a node to all others (by symmetry,
    /// independent of the source node). Computed per-axis in closed form.
    pub fn mean_hops(&self) -> f64 {
        fn axis_mean(n: usize) -> f64 {
            // Mean over d in 0..n of min(d, n-d).
            let total: usize = (0..n).map(|d| d.min(n - d)).sum();
            total as f64 / n as f64
        }
        axis_mean(self.x) + axis_mean(self.y) + axis_mean(self.z)
    }

    /// Mapping dilation of this torus relative to the most-cubic power-of-
    /// two torus of comparable size: the ratio of mean hop distances,
    /// ≥ 1.0. Non-power-of-two node counts factor into flatter tori with
    /// longer average routes — the geometric origin of the paper's 15%
    /// penalty at 294,912 cores.
    pub fn dilation_vs_power_of_two(&self) -> f64 {
        let n = self.len();
        let pow2 = 1usize << (usize::BITS - 1 - n.leading_zeros()); // floor to 2^k
        let reference = Torus3D::balanced(pow2);
        let mine = self.mean_hops();
        let theirs = reference.mean_hops() * (n as f64 / pow2 as f64).cbrt();
        (mine / theirs).max(1.0)
    }
}

/// How MPI ranks are laid out onto torus coordinates — the "custom
/// mappings" the paper's future work proposes for non-power-of-two
/// partitions (§VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RankMapping {
    /// Plain row-major order (x fastest) — the default the paper suffered
    /// under.
    RowMajor,
    /// Boustrophedon ("snake") order: the x direction reverses on odd y
    /// rows and the y direction on odd z planes, so consecutive ranks are
    /// always physically adjacent (1 hop).
    Snake,
}

impl Torus3D {
    /// The torus coordinate of `rank` under a mapping.
    pub fn coord_mapped(&self, rank: usize, mapping: RankMapping) -> (usize, usize, usize) {
        match mapping {
            RankMapping::RowMajor => self.coord(rank),
            RankMapping::Snake => {
                let (cx, cy, cz) = self.coord(rank);
                // Serpentine: planes alternate y direction, and the x
                // direction reverses on every *traversed* row (row index
                // cz·Y + cy), so consecutive ranks stay 1 hop apart across
                // row and plane seams alike.
                let y = if cz % 2 == 1 { self.y - 1 - cy } else { cy };
                let row_index = cz * self.y + cy;
                let x = if row_index % 2 == 1 { self.x - 1 - cx } else { cx };
                (x, y, cz)
            }
        }
    }

    /// Hop distance between two ranks under a mapping.
    pub fn hops_mapped(&self, a: usize, b: usize, mapping: RankMapping) -> usize {
        let ca = self.coord_mapped(a, mapping);
        let cb = self.coord_mapped(b, mapping);
        let d = |p: usize, q: usize, n: usize| {
            let diff = p.abs_diff(q);
            diff.min(n - diff)
        };
        d(ca.0, cb.0, self.x) + d(ca.1, cb.1, self.y) + d(ca.2, cb.2, self.z)
    }

    /// Total hop count of a rank-order ring exchange (each rank talks to
    /// rank+1 mod P) — the neighbour-communication cost a mapping controls.
    pub fn ring_cost(&self, mapping: RankMapping) -> usize {
        let n = self.len();
        (0..n)
            .map(|r| self.hops_mapped(r, (r + 1) % n, mapping))
            .sum()
    }

    /// Total hop count of the binomial broadcast tree rooted at rank 0:
    /// relative rank `r` receives from `r − lsb(r)`. This is the torus
    /// traffic behind every collective in the population-dynamics phase.
    pub fn tree_cost(&self, mapping: RankMapping) -> usize {
        let n = self.len();
        (1..n)
            .map(|r| {
                let parent = r - (r & r.wrapping_neg());
                self.hops_mapped(r, parent, mapping)
            })
            .sum()
    }
}

/// The collective (tree) network: a binomial/binary tree over `P` ranks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectiveTree {
    /// Participating ranks.
    pub size: usize,
}

impl CollectiveTree {
    /// Tree over `size` ranks.
    pub fn new(size: usize) -> Self {
        assert!(size >= 1);
        CollectiveTree { size }
    }

    /// Depth of the broadcast/reduce tree: `⌈log₂ P⌉` levels, the latency
    /// multiplier the performance model charges per collective.
    pub fn depth(&self) -> u32 {
        (self.size as u64).next_power_of_two().trailing_zeros()
    }

    /// Total point-to-point messages one broadcast generates (`P − 1`).
    pub fn messages_per_bcast(&self) -> usize {
        self.size - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coord_rank_roundtrip() {
        let t = Torus3D::new(4, 3, 2);
        for r in 0..t.len() {
            assert_eq!(t.rank(t.coord(r)), r);
        }
        assert_eq!(t.len(), 24);
    }

    #[test]
    fn hops_zero_iff_same_rank() {
        let t = Torus3D::new(4, 4, 4);
        for r in [0usize, 13, 63] {
            assert_eq!(t.hops(r, r), 0);
        }
        assert!(t.hops(0, 1) > 0);
    }

    #[test]
    fn hops_symmetric_and_triangle() {
        let t = Torus3D::new(5, 4, 3);
        let ranks = [0usize, 7, 23, 41, 59];
        for &a in &ranks {
            for &b in &ranks {
                assert_eq!(t.hops(a, b), t.hops(b, a));
                for &c in &ranks {
                    assert!(t.hops(a, c) <= t.hops(a, b) + t.hops(b, c));
                }
            }
        }
    }

    #[test]
    fn wraparound_shortens_paths() {
        // On an 8-ring, node 0 to node 7 is 1 hop, not 7.
        let t = Torus3D::new(8, 1, 1);
        assert_eq!(t.hops(0, 7), 1);
        assert_eq!(t.hops(0, 4), 4); // antipode
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn balanced_factorisation_is_cubic_for_powers_of_two() {
        let t = Torus3D::balanced(4096);
        assert_eq!(t.len(), 4096);
        assert_eq!((t.x, t.y, t.z), (16, 16, 16));
        let t = Torus3D::balanced(512);
        assert_eq!((t.x, t.y, t.z), (8, 8, 8));
    }

    #[test]
    fn balanced_covers_awkward_counts() {
        for n in [1usize, 2, 3, 7, 30, 100, 294_912 / 512] {
            let t = Torus3D::balanced(n);
            assert_eq!(t.len(), n, "n={n}");
        }
    }

    #[test]
    fn mean_hops_matches_bruteforce() {
        let t = Torus3D::new(4, 3, 2);
        let n = t.len();
        let brute: f64 = (0..n).map(|b| t.hops(0, b) as f64).sum::<f64>() / n as f64;
        assert!((t.mean_hops() - brute).abs() < 1e-9);
    }

    #[test]
    fn dilation_is_one_for_powers_of_two() {
        for k in [6usize, 9, 12] {
            let t = Torus3D::balanced(1 << k);
            let d = t.dilation_vs_power_of_two();
            assert!((d - 1.0).abs() < 0.05, "2^{k} dilation {d}");
        }
    }

    #[test]
    fn prime_partitions_dilate() {
        // A prime node count forces a 1-D ring: much longer mean routes.
        let t = Torus3D::balanced(509); // prime
        assert!(t.dilation_vs_power_of_two() > 1.5);
    }

    #[test]
    fn bluegene_72_racks_dilates_over_64_racks() {
        // 294,912 = 72 racks; 262,144 = 64 racks (power of two).
        let full = Torus3D::balanced(294_912);
        let sixty_four = Torus3D::balanced(262_144);
        assert!(full.dilation_vs_power_of_two() >= sixty_four.dilation_vs_power_of_two());
        assert!((sixty_four.dilation_vs_power_of_two() - 1.0).abs() < 0.05);
    }

    #[test]
    fn snake_mapping_is_a_bijection() {
        let t = Torus3D::new(4, 3, 2);
        let mut seen = std::collections::BTreeSet::new();
        for r in 0..t.len() {
            assert!(seen.insert(t.coord_mapped(r, RankMapping::Snake)));
        }
        assert_eq!(seen.len(), t.len());
    }

    #[test]
    fn snake_consecutive_ranks_are_adjacent() {
        // Within the torus, consecutive snake ranks are exactly 1 hop apart
        // (the wrap edge from last to first can be longer).
        let t = Torus3D::new(4, 4, 2);
        for r in 0..t.len() - 1 {
            assert_eq!(
                t.hops_mapped(r, r + 1, RankMapping::Snake),
                1,
                "ranks {r},{} not adjacent",
                r + 1
            );
        }
    }

    #[test]
    fn snake_ring_cost_beats_row_major() {
        for t in [Torus3D::new(8, 8, 4), Torus3D::new(6, 4, 4), Torus3D::balanced(288)] {
            let snake = t.ring_cost(RankMapping::Snake);
            let naive = t.ring_cost(RankMapping::RowMajor);
            assert!(
                snake < naive,
                "{t:?}: snake {snake} should beat row-major {naive}"
            );
        }
    }

    #[test]
    fn tree_cost_positive_and_mapping_dependent() {
        let t = Torus3D::new(8, 8, 8);
        let naive = t.tree_cost(RankMapping::RowMajor);
        let snake = t.tree_cost(RankMapping::Snake);
        assert!(naive > 0 && snake > 0);
        // The binomial tree's power-of-two strides are what they are; just
        // pin consistency with the unmapped hop function.
        assert_eq!(
            t.hops_mapped(5, 4, RankMapping::RowMajor),
            t.hops(5, 4)
        );
    }

    #[test]
    fn collective_tree_depth() {
        assert_eq!(CollectiveTree::new(1).depth(), 0);
        assert_eq!(CollectiveTree::new(2).depth(), 1);
        assert_eq!(CollectiveTree::new(3).depth(), 2);
        assert_eq!(CollectiveTree::new(1024).depth(), 10);
        assert_eq!(CollectiveTree::new(262_144).depth(), 18);
        assert_eq!(CollectiveTree::new(294_912).depth(), 19);
    }

    #[test]
    fn messages_per_bcast() {
        assert_eq!(CollectiveTree::new(16).messages_per_bcast(), 15);
        assert_eq!(CollectiveTree::new(1).messages_per_bcast(), 0);
    }
}
