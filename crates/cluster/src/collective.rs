//! Collective operations built from point-to-point messages.
//!
//! The paper uses Blue Gene's dedicated collective network for
//! `MPI_Bcast`-style global communication (§V-B). Here broadcasts and
//! reductions run through **binomial trees of real point-to-point sends**
//! over the virtual cluster, so the `O(log P)` message structure the
//! performance model charges for is the structure that actually executes.
//!
//! All ranks must call each collective in the same order (SPMD discipline,
//! as with MPI). Tags above `u32::MAX / 2` are reserved; an internal
//! per-rank operation counter keeps successive collectives from
//! cross-matching.

use crate::comm::{ClusterError, Comm, Envelope, Rank, Tag};
use std::cell::Cell;
use std::time::Duration;

/// First tag reserved for collective traffic.
pub const COLLECTIVE_TAG_BASE: Tag = u32::MAX / 2;

/// The point-to-point capability collectives are built on. Implemented by
/// the plain [`Comm`] handle and by the virtual-time
/// [`crate::simtime::TimedComm`], so the same binomial-tree algorithms run
/// untimed (functional) or timed (performance simulation).
pub trait Messenger {
    /// Message body type.
    type Payload: Send + Clone + 'static;
    /// This rank's index.
    fn rank(&self) -> Rank;
    /// Number of ranks.
    fn size(&self) -> usize;
    /// Send `payload` to `dst` under `tag`.
    fn send(&self, dst: Rank, tag: Tag, payload: Self::Payload) -> Result<(), ClusterError>;
    /// Blocking receive matching optional source and tag filters.
    fn recv(
        &self,
        src: Option<Rank>,
        tag: Option<Tag>,
    ) -> Result<Envelope<Self::Payload>, ClusterError>;
    /// Receive with a deadline: fail with [`ClusterError::Timeout`] once
    /// `timeout` elapses without a matching message. The default ignores
    /// the deadline and blocks (correct for messengers without a fault
    /// model, e.g. the virtual-time `TimedComm`); [`Comm`] overrides it.
    fn recv_timeout(
        &self,
        src: Option<Rank>,
        tag: Option<Tag>,
        _timeout: Duration,
    ) -> Result<Envelope<Self::Payload>, ClusterError> {
        // detlint: allow(comm-discipline, reason = "default for messengers without a fault model (virtual-time TimedComm): no peer can die, so blocking is deadlock-free; Comm overrides with a real deadline")
        self.recv(src, tag)
    }
}

impl<T: Send + Clone + 'static> Messenger for Comm<T> {
    type Payload = T;
    fn rank(&self) -> Rank {
        Comm::rank(self)
    }
    fn size(&self) -> usize {
        Comm::size(self)
    }
    fn send(&self, dst: Rank, tag: Tag, payload: T) -> Result<(), ClusterError> {
        Comm::send(self, dst, tag, payload)
    }
    fn recv(&self, src: Option<Rank>, tag: Option<Tag>) -> Result<Envelope<T>, ClusterError> {
        // detlint: allow(comm-discipline, reason = "trait plumbing: forwards to Comm::recv, which is aliveness-aware (returns PeerDead instead of hanging); deadlines are added by recv_timeout above")
        Comm::recv(self, src, tag)
    }
    fn recv_timeout(
        &self,
        src: Option<Rank>,
        tag: Option<Tag>,
        timeout: Duration,
    ) -> Result<Envelope<T>, ClusterError> {
        Comm::recv_timeout(self, src, tag, timeout)
    }
}

/// Collective-operation wrapper around a rank's messenger handle.
pub struct Collective<'a, M> {
    comm: &'a M,
    next: Cell<Tag>,
    /// Deadline applied to every internal receive; `None` = block
    /// (aliveness-aware on [`Comm`], so killed peers still error).
    recv_timeout: Option<Duration>,
}

impl<M> std::fmt::Debug for Collective<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collective")
            .field("next", &self.next)
            .finish_non_exhaustive()
    }
}

impl<'a, M: Messenger> Collective<'a, M> {
    /// Wrap a communicator. Create exactly one wrapper per rank and issue
    /// all collectives through it.
    pub fn new(comm: &'a M) -> Self {
        Collective {
            comm,
            next: Cell::new(COLLECTIVE_TAG_BASE),
            recv_timeout: None,
        }
    }

    /// Like [`Collective::new`], but every internal receive runs under
    /// `timeout` — a peer that goes silent (dropped message from an alive
    /// rank) surfaces as [`ClusterError::Timeout`] instead of a hang.
    /// Killed peers are detected either way; the deadline only matters for
    /// lost messages. Fault-injecting callers (`dist` under a `FaultPlan`
    /// with `recv_timeout_ms`) use this constructor.
    pub fn with_recv_timeout(comm: &'a M, timeout: Duration) -> Self {
        Collective {
            comm,
            next: Cell::new(COLLECTIVE_TAG_BASE),
            recv_timeout: Some(timeout),
        }
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &M {
        self.comm
    }

    /// Internal receive: deadline-bound when the collective was built with
    /// [`Collective::with_recv_timeout`], plain blocking otherwise.
    fn crecv(
        &self,
        src: Option<Rank>,
        tag: Option<Tag>,
    ) -> Result<Envelope<M::Payload>, ClusterError> {
        match self.recv_timeout {
            Some(t) => self.comm.recv_timeout(src, tag, t),
            // detlint: allow(comm-discipline, reason = "explicit opt-out: no fault deadline configured; the source is always filtered and Comm::recv returns PeerDead on dead peers rather than hanging")
            None => self.comm.recv(src, tag),
        }
    }

    fn next_tag(&self) -> Tag {
        // Every collective claims exactly one tag per participating rank,
        // so this is the natural single point to count collective ops.
        obs::counters().add_collective_op();
        let t = self.next.get();
        self.next
            // detlint: allow(panic-path, reason = "invariant: u64 tag counter cannot overflow within any feasible run; checked_add makes the impossible overflow loud instead of wrapping")
            .set(t.checked_add(1).expect("collective tag space exhausted"));
        t
    }

    /// Rank relative to `root` (MPI's virtual-rank trick for rooted trees).
    fn relative_rank(&self, root: Rank) -> usize {
        let (rank, size) = (self.comm.rank(), self.comm.size());
        if rank >= root {
            rank - root
        } else {
            rank + size - root
        }
    }

    /// Binomial-tree broadcast: `root` supplies `Some(value)`, everyone
    /// returns the value. Non-roots pass `None`.
    ///
    /// `O(log₂ P)` rounds; each non-root receives exactly once and forwards
    /// down its subtree — the message pattern behind the paper's pair
    /// selections, mutation announcements, and global strategy updates.
    pub fn bcast(
        &self,
        root: Rank,
        value: Option<M::Payload>,
    ) -> Result<M::Payload, ClusterError> {
        let size = self.comm.size();
        let tag = self.next_tag();
        let vrank = self.relative_rank(root);
        debug_assert_eq!(vrank == 0, value.is_some(), "exactly the root passes Some");
        let mut payload = value;
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask != 0 {
                let src = (vrank - mask + root) % size;
                payload = Some(self.crecv(Some(src), Some(tag))?.payload);
                break;
            }
            mask <<= 1;
        }
        let mut forward_mask = mask >> 1;
        // detlint: allow(panic-path, reason = "invariant: bcast's binomial tree guarantees either this rank is root (payload passed in) or the loop above received from its parent before breaking")
        let v = payload.expect("root passed Some or value was received");
        while forward_mask > 0 {
            if vrank + forward_mask < size {
                let dst = (vrank + forward_mask + root) % size;
                self.comm.send(dst, tag, v.clone())?;
            }
            forward_mask >>= 1;
        }
        Ok(v)
    }

    /// Binomial-tree reduction to `root` with combiner `op`; returns
    /// `Some(total)` at the root, `None` elsewhere. `op` must be
    /// associative and commutative for a well-defined result.
    pub fn reduce(
        &self,
        root: Rank,
        value: M::Payload,
        mut op: impl FnMut(M::Payload, M::Payload) -> M::Payload,
    ) -> Result<Option<M::Payload>, ClusterError> {
        let size = self.comm.size();
        let tag = self.next_tag();
        let vrank = self.relative_rank(root);
        let mut acc = value;
        let mut mask = 1usize;
        while mask < size {
            if vrank & mask == 0 {
                let peer = vrank | mask;
                if peer < size {
                    let src = (peer + root) % size;
                    let got = self.crecv(Some(src), Some(tag))?.payload;
                    acc = op(acc, got);
                }
            } else {
                let dst = ((vrank & !mask) + root) % size;
                self.comm.send(dst, tag, acc)?;
                return Ok(None);
            }
            mask <<= 1;
        }
        Ok(Some(acc))
    }

    /// Reduce to `root` then broadcast the result to everyone.
    pub fn allreduce(
        &self,
        value: M::Payload,
        op: impl FnMut(M::Payload, M::Payload) -> M::Payload,
    ) -> Result<M::Payload, ClusterError> {
        let total = self.reduce(0, value, op)?;
        self.bcast(0, total)
    }

    /// Gather every rank's value at `root` (rank order), by direct sends —
    /// the pattern of the paper's fitness returns to the Nature Agent.
    /// Returns `Some(values)` at the root, `None` elsewhere.
    ///
    /// The root receives from each contributor *by source*, not via a
    /// wildcard: source-filtered receives are aliveness-aware, so a peer
    /// that dies before contributing surfaces as
    /// [`ClusterError::RankDead`] even without a receive deadline
    /// (docs/FAULT_TOLERANCE.md). Out-of-order arrivals are no slower —
    /// non-matching envelopes are buffered by [`Comm`] and claimed when
    /// their turn comes.
    pub fn gather(
        &self,
        root: Rank,
        value: M::Payload,
    ) -> Result<Option<Vec<M::Payload>>, ClusterError> {
        let tag = self.next_tag();
        if self.comm.rank() == root {
            let size = self.comm.size();
            let mut out: Vec<Option<M::Payload>> = (0..size).map(|_| None).collect();
            out[root] = Some(value);
            for src in (0..size).filter(|&r| r != root) {
                let env = self.crecv(Some(src), Some(tag))?;
                out[env.src] = Some(env.payload);
            }
            Ok(Some(
                out.into_iter()
                    // detlint: allow(panic-path, reason = "invariant: the source-filtered crecv loop above fills every non-root slot or returns Err first; root's own slot is set before the loop")
                    .map(|v| v.expect("every rank sent"))
                    .collect(),
            ))
        } else {
            self.comm.send(root, tag, value)?;
            Ok(None)
        }
    }

    /// Synchronisation barrier: no rank returns until all have entered.
    /// Implemented as an empty-payload reduce + broadcast through the same
    /// binomial trees.
    pub fn barrier(&self, token: M::Payload) -> Result<(), ClusterError> {
        let t = self.reduce(0, token, |a, _| a)?;
        let _ = self.bcast(0, t)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::VirtualCluster;
    // detlint: allow(atomics, reason = "test-only probe counting barrier participants; asserts on the final value, not an interleaving")
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn bcast_delivers_to_all_ranks() {
        for size in [1usize, 2, 3, 5, 8, 16, 17] {
            let results = VirtualCluster::run(size, move |comm| {
                let coll = Collective::new(&comm);
                let value = if comm.rank() == 0 { Some(42u64) } else { None };
                coll.bcast(0, value).unwrap()
            });
            assert_eq!(results, vec![42u64; size], "size {size}");
        }
    }

    #[test]
    fn bcast_from_nonzero_root() {
        for root in 0..5 {
            let results = VirtualCluster::run(5, move |comm| {
                let coll = Collective::new(&comm);
                let value = (comm.rank() == root).then_some(root * 10);
                coll.bcast(root, value).unwrap()
            });
            assert_eq!(results, vec![root * 10; 5], "root {root}");
        }
    }

    #[test]
    fn consecutive_bcasts_do_not_cross_match() {
        let results = VirtualCluster::run(6, |comm| {
            let coll = Collective::new(&comm);
            let mut got = Vec::new();
            for i in 0..20u32 {
                let v = (comm.rank() == 0).then_some(i * 7);
                got.push(coll.bcast(0, v).unwrap());
            }
            got
        });
        for r in results {
            assert_eq!(r, (0..20).map(|i| i * 7).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn reduce_sums_all_ranks() {
        for size in [1usize, 2, 4, 7, 16, 31] {
            let results = VirtualCluster::run(size, |comm| {
                let coll = Collective::new(&comm);
                coll.reduce(0, comm.rank() as u64, |a, b| a + b).unwrap()
            });
            let expect: u64 = (0..size as u64).sum();
            assert_eq!(results[0], Some(expect), "size {size}");
            for r in &results[1..] {
                assert_eq!(*r, None);
            }
        }
    }

    #[test]
    fn reduce_to_nonzero_root() {
        let results = VirtualCluster::run(9, |comm| {
            let coll = Collective::new(&comm);
            coll.reduce(3, 1u32, |a, b| a + b).unwrap()
        });
        assert_eq!(results[3], Some(9));
        for (i, r) in results.iter().enumerate() {
            if i != 3 {
                assert_eq!(*r, None);
            }
        }
    }

    #[test]
    fn reduce_max_finds_maximum() {
        let results = VirtualCluster::run(12, |comm| {
            let coll = Collective::new(&comm);
            // Spread values so the max is at an interior rank.
            let v = ((comm.rank() * 7) % 12) as i64;
            coll.reduce(0, v, i64::max).unwrap()
        });
        assert_eq!(results[0], Some(11));
    }

    #[test]
    fn allreduce_gives_everyone_the_total() {
        let results = VirtualCluster::run(10, |comm| {
            let coll = Collective::new(&comm);
            coll.allreduce(comm.rank() as u64 + 1, |a, b| a + b).unwrap()
        });
        assert_eq!(results, vec![55u64; 10]);
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let results = VirtualCluster::run(7, |comm| {
            let coll = Collective::new(&comm);
            coll.gather(2, comm.rank() as u32 * 100).unwrap()
        });
        assert_eq!(
            results[2],
            Some((0..7).map(|r| r as u32 * 100).collect::<Vec<_>>())
        );
        for (i, r) in results.iter().enumerate() {
            if i != 2 {
                assert_eq!(*r, None);
            }
        }
    }

    #[test]
    fn barrier_synchronises() {
        // Counter must reach `size` before any rank proceeds past the
        // barrier and reads it.
        // detlint: allow(atomics, reason = "test-only barrier probe")
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        let results = VirtualCluster::run(8, move |comm| {
            let coll = Collective::new(&comm);
            // detlint: allow(atomics, reason = "test-only barrier probe")
            c2.fetch_add(1, Ordering::SeqCst);
            coll.barrier(0u8).unwrap();
            // detlint: allow(atomics, reason = "test-only barrier probe")
            c2.load(Ordering::SeqCst)
        });
        assert_eq!(results, vec![8usize; 8]);
    }

    #[test]
    fn mixed_collectives_interleave_correctly() {
        // Exercise the per-op tag counter across different op kinds.
        let results = VirtualCluster::run(5, |comm| {
            let coll = Collective::new(&comm);
            let a = coll
                .bcast(0, (comm.rank() == 0).then_some(1u64))
                .unwrap();
            let b = coll.allreduce(comm.rank() as u64, |x, y| x + y).unwrap();
            coll.barrier(0).unwrap();
            let c = coll
                .bcast(4, (comm.rank() == 4).then_some(99u64))
                .unwrap();
            (a, b, c)
        });
        for r in results {
            assert_eq!(r, (1, 10, 99));
        }
    }

    #[test]
    fn bcast_with_killed_peer_errors_instead_of_hanging() {
        // In the 4-rank binomial tree rooted at 0, rank 3 receives its copy
        // from rank 2. Killing rank 2 must surface as a typed error at rank
        // 3 — not a deadlock. Rank 1 (fed directly by the root) still
        // completes.
        let results = VirtualCluster::run(4, |comm| {
            let coll = Collective::new(&comm);
            if comm.rank() == 2 {
                comm.kill();
                return Err(ClusterError::RankDead(2));
            }
            coll.bcast(0, (comm.rank() == 0).then_some(7u64))
        });
        assert_eq!(results[1], Ok(7));
        assert_eq!(results[3], Err(ClusterError::RankDead(2)));
        // Rank 0 only sends; depending on whether the kill lands before its
        // send to rank 2 it sees success or the dead rank — never a hang.
        assert!(matches!(results[0], Ok(7) | Err(ClusterError::RankDead(2))));
    }

    #[test]
    fn gather_with_killed_peer_times_out_at_root() {
        // The root expects size-1 contributions; a dead rank's never
        // arrives. With a deadline the root errors instead of hanging.
        let results = VirtualCluster::run(4, |comm| {
            let coll =
                Collective::with_recv_timeout(&comm, std::time::Duration::from_millis(200));
            if comm.rank() == 2 {
                comm.kill();
                return Err(ClusterError::RankDead(2));
            }
            coll.gather(0, comm.rank() as u32).map(|_| ())
        });
        match &results[0] {
            Err(ClusterError::RankDead(2)) | Err(ClusterError::Timeout) => {}
            other => panic!("root should detect the dead peer, got {other:?}"),
        }
    }

    #[test]
    fn gather_with_killed_peer_errors_even_without_deadline() {
        // Regression: the root's receives are source-filtered, so a dead
        // contributor surfaces as `RankDead` through the aliveness check
        // alone — no receive deadline required. (A wildcard-receive gather
        // deadlocked here: wildcards only fail once *every* peer is dead.)
        let results = VirtualCluster::run(4, |comm| {
            let coll = Collective::new(&comm);
            if comm.rank() == 2 {
                comm.kill();
                return Err(ClusterError::RankDead(2));
            }
            coll.gather(0, comm.rank() as u32).map(|_| ())
        });
        assert_eq!(results[0], Err(ClusterError::RankDead(2)));
        for r in [1, 3] {
            assert!(
                matches!(results[r], Ok(()) | Err(ClusterError::RankDead(2))),
                "rank {r}: {:?}",
                results[r]
            );
        }
    }

    #[test]
    fn bcast_message_count_is_p_minus_one() {
        // A binomial broadcast sends exactly P−1 point-to-point messages.
        for size in [2usize, 8, 13] {
            let results = VirtualCluster::run(size, |comm| {
                let coll = Collective::new(&comm);
                let before = comm.cluster_messages_sent();
                let _ = coll
                    .bcast(0, (comm.rank() == 0).then_some(0u8))
                    .unwrap();
                coll.barrier(0).unwrap();
                comm.cluster_messages_sent() - before
            });
            // After the barrier every rank sees at least the bcast's sends;
            // the barrier itself adds more, so check the root's lower bound
            // precisely via a dedicated count: total sends minus barrier
            // sends (reduce P-1 + bcast P-1).
            let total = results.iter().max().unwrap();
            assert!(
                *total >= (size as u64 - 1),
                "size {size}: saw {total} sends"
            );
        }
    }
}
