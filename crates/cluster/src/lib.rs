//! Simulated message-passing cluster — the substrate standing in for the
//! paper's IBM Blue Gene/L & /P machines and their MPI runtime (§V).
//!
//! The paper maps the algorithm onto Blue Gene as: one node is the Nature
//! Agent; all other nodes hold agents from multiple SSets; collectives
//! (`MPI_Bcast`) carry pair selections and strategy updates, and
//! non-blocking point-to-point messages along the torus return fitnesses.
//! Rust MPI bindings being immature, this crate re-creates that execution
//! model in-process:
//!
//! - [`comm`] — virtual ranks as OS threads with typed mailboxes and
//!   ordered point-to-point channels (the MPI stand-in), including failure
//!   injection for robustness tests.
//! - [`collective`] — broadcast / reduce / gather / barrier implemented *on
//!   top of* point-to-point sends through binomial trees, so the
//!   communication pattern of §V-B is actually exercised, message by
//!   message.
//! - [`topology`] — the 3-D torus interconnect geometry: rank ↔ coordinate
//!   maps, hop counts, partition shapes, and the mapping dilation that
//!   penalises non-power-of-two partitions (§VI-D).
//! - [`dist`] — the distributed engine: rank 0 is the Nature Agent, compute
//!   ranks own blocks of SSets, and a generation proceeds exactly as in
//!   §V-A/B. Produces trajectories identical to the shared-memory
//!   [`evo_core::population::Population`].
//! - [`faults`] — deterministic fault injection: a seeded [`faults::FaultPlan`]
//!   schedules rank kills and message drop/delay/duplicate from a dedicated
//!   RNG stream, so fault schedules never perturb evolution streams
//!   (`docs/FAULT_TOLERANCE.md`).
//! - [`perf`] — an analytic LogGP-style performance model, calibrated
//!   against the paper's published runtimes and against locally measured
//!   game-kernel costs, used to regenerate the scaling tables and figures
//!   at Blue Gene scale (up to 262,144 processors).

#![forbid(unsafe_code)]

pub mod collective;
pub mod comm;
pub mod dist;
pub mod faults;
pub mod perf;
pub mod simtime;
pub mod topology;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::collective::{Collective, Messenger};
    pub use crate::comm::{ClusterError, Comm, Envelope, Rank, Tag, VirtualCluster};
    pub use crate::dist::graph::{
        run_spatial_distributed, SpatialDegradedRun, SpatialDistConfig, SpatialOutcome,
    };
    pub use crate::dist::{DegradedRun, DistConfig, DistError, DistOutcome};
    pub use crate::faults::{FaultAction, FaultPlan, MessageFault, MessageFaults, RankKill};
    pub use crate::perf::{MachineProfile, PerfModel, Workload};
    pub use crate::simtime::{simulate_run, run_timed, NetCosts, TimedComm};
    pub use crate::topology::{CollectiveTree, Torus3D};
}

pub use comm::{Comm, Rank, Tag, VirtualCluster};
pub use topology::Torus3D;
