//! Observability for the evolution engine: counters, spans, histograms,
//! and the machine-readable **run manifest**.
//!
//! The paper's evaluation (§VI) is entirely about *measured* behaviour —
//! per-generation wall time, game-kernel throughput, communication volume.
//! This crate gives the reproduction the same visibility. It sits at the
//! bottom of the dependency graph (below `ipd`, `evo-core`, and `cluster`)
//! and exposes three layers, all documented as a stable contract in
//! `docs/OBSERVABILITY.md`:
//!
//! 1. **Counters** ([`counters`]) — process-global relaxed atomics that are
//!    *always on*. The instrumented crates increment them at well-defined
//!    points: games played, rounds simulated, Fermi updates, mutations,
//!    RNG streams opened, messages/bytes through the virtual cluster.
//! 2. **Spans** ([`span`]) — named wall-clock timings through the hot
//!    paths (generation loop, fitness evaluation, collectives, the
//!    distributed engine). Gated by [`set_enabled`]: when disabled a span
//!    is a single relaxed atomic load.
//! 3. **The run manifest** ([`RunManifest`]) — a JSON document capturing
//!    params, seed, thread count, per-generation timings, and counter
//!    snapshots. The CLI (`--manifest-out`), the quickstart example, and
//!    the `bench` fig/table regenerators all emit this one format.
//!
//! # Determinism guarantee
//!
//! Nothing in this crate ever constructs, advances, or otherwise touches
//! the engine's counter-based RNG streams (`evo_core::rngstream`). Metrics
//! read wall clocks and atomics only, so enabling or disabling
//! observability **cannot change a simulation trajectory** — results stay
//! bit-identical at any thread count. `tests/observability.rs` in the
//! workspace root enforces this.
//!
//! # Examples
//!
//! Counters are always live; read them with a snapshot:
//!
//! ```
//! let before = obs::counters().snapshot();
//! obs::counters().add_game(200); // what ipd::game::play does per game
//! let after = obs::counters().snapshot();
//! assert!(after.monotone_since(&before));
//! assert!(after.games_played >= before.games_played + 1);
//! assert!(after.rounds_simulated >= before.rounds_simulated + 200);
//! ```
//!
//! Spans time a scope when observability is enabled:
//!
//! ```
//! obs::set_enabled(true);
//! {
//!     let _span = obs::span("example.work");
//!     std::hint::black_box(40 + 2);
//! }
//! let spans = obs::span_snapshots();
//! let s = spans.iter().find(|s| s.name == "example.work").unwrap();
//! assert!(s.count >= 1);
//! obs::set_enabled(false);
//! ```
//!
//! A manifest round-trips through JSON:
//!
//! ```
//! use serde::Serialize;
//! let manifest = obs::RunManifest::capture(
//!     42u64.to_value(),               // any serialisable params
//!     42,                             // seed
//!     1,                              // threads
//!     2,                              // generations
//!     0.5,                            // elapsed seconds
//!     &obs::CounterSnapshot::default(),
//!     &[1_000, 2_000],                // per-generation nanoseconds
//! );
//! let json = manifest.to_json();
//! let back = obs::RunManifest::from_json(&json).unwrap();
//! assert_eq!(manifest, back);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use serde::{Deserialize, Serialize, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Version of the [`RunManifest`] JSON schema. Bump on any
/// backwards-incompatible change and update `docs/OBSERVABILITY.md`.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

// --------------------------------------------------------------- counters

/// The process-global event counters. All increments use relaxed atomics —
/// cheap enough to stay **always on**, independent of [`enabled`].
///
/// Counters only ever increase within a process (there is deliberately no
/// reset), so concurrent readers can rely on monotonicity. Attribute
/// counts to a region of interest by taking a [`Counters::snapshot`]
/// before and after and diffing with [`CounterSnapshot::delta_since`].
#[derive(Debug)]
pub struct Counters {
    games_played: AtomicU64,
    rounds_simulated: AtomicU64,
    fermi_updates: AtomicU64,
    mutations: AtomicU64,
    rng_streams: AtomicU64,
    comm_messages: AtomicU64,
    comm_bytes: AtomicU64,
    collective_ops: AtomicU64,
    perf_model_evals: AtomicU64,
    faults_injected: AtomicU64,
    comm_timeouts: AtomicU64,
    checkpoints_written: AtomicU64,
    payoff_cache_hits: AtomicU64,
    payoff_cache_misses: AtomicU64,
    markov_fastpath_evals: AtomicU64,
    jobs_accepted: AtomicU64,
    jobs_rejected: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_retried: AtomicU64,
    replicates_run: AtomicU64,
    fixations: AtomicU64,
    extinctions: AtomicU64,
}

static COUNTERS: Counters = Counters {
    games_played: AtomicU64::new(0),
    rounds_simulated: AtomicU64::new(0),
    fermi_updates: AtomicU64::new(0),
    mutations: AtomicU64::new(0),
    rng_streams: AtomicU64::new(0),
    comm_messages: AtomicU64::new(0),
    comm_bytes: AtomicU64::new(0),
    collective_ops: AtomicU64::new(0),
    perf_model_evals: AtomicU64::new(0),
    faults_injected: AtomicU64::new(0),
    comm_timeouts: AtomicU64::new(0),
    checkpoints_written: AtomicU64::new(0),
    payoff_cache_hits: AtomicU64::new(0),
    payoff_cache_misses: AtomicU64::new(0),
    markov_fastpath_evals: AtomicU64::new(0),
    jobs_accepted: AtomicU64::new(0),
    jobs_rejected: AtomicU64::new(0),
    jobs_completed: AtomicU64::new(0),
    jobs_retried: AtomicU64::new(0),
    replicates_run: AtomicU64::new(0),
    fixations: AtomicU64::new(0),
    extinctions: AtomicU64::new(0),
};

/// The process-global [`Counters`] instance.
pub fn counters() -> &'static Counters {
    &COUNTERS
}

impl Counters {
    /// One iterated game finished, `rounds` rounds long. Incremented by
    /// every game kernel in `ipd::game` (sampled, deterministic, cycle,
    /// transcript); the cycle kernel counts the *logical* rounds it pays
    /// out arithmetically.
    #[inline]
    pub fn add_game(&self, rounds: u32) {
        self.games_played.fetch_add(1, Ordering::Relaxed);
        self.rounds_simulated
            .fetch_add(rounds as u64, Ordering::Relaxed);
    }

    /// One Fermi pairwise comparison resolved
    /// (`NatureAgent::resolve_pc`).
    #[inline]
    pub fn add_fermi_update(&self) {
        self.fermi_updates.fetch_add(1, Ordering::Relaxed);
    }

    /// One mutation strategy drawn (`NatureAgent::mutation_strategy`).
    #[inline]
    pub fn add_mutation(&self) {
        self.mutations.fetch_add(1, Ordering::Relaxed);
    }

    /// One counter-based RNG stream opened (`evo_core::rngstream::stream`).
    #[inline]
    pub fn add_rng_stream(&self) {
        self.rng_streams.fetch_add(1, Ordering::Relaxed);
    }

    /// One point-to-point message of `bytes` payload bytes sent through
    /// `cluster::comm` (collective traffic included — collectives are
    /// built from point-to-point sends).
    #[inline]
    pub fn add_comm_message(&self, bytes: u64) {
        self.comm_messages.fetch_add(1, Ordering::Relaxed);
        self.comm_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// One collective operation (bcast/reduce/gather/barrier) initiated on
    /// one rank (`cluster::collective`).
    #[inline]
    pub fn add_collective_op(&self) {
        self.collective_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// One analytic performance-model evaluation
    /// (`cluster::perf::PerfModel::breakdown`).
    #[inline]
    pub fn add_perf_model_eval(&self) {
        self.perf_model_evals.fetch_add(1, Ordering::Relaxed);
    }

    /// One scheduled fault executed by the virtual cluster's transport or
    /// engine (message drop/delay/duplicate applied, rank killed on plan).
    #[inline]
    pub fn add_fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// One receive deadline expired (`cluster::comm` returned
    /// `ClusterError::Timeout`). Fault-free runs never increment this.
    #[inline]
    pub fn add_comm_timeout(&self) {
        self.comm_timeouts.fetch_add(1, Ordering::Relaxed);
    }

    /// One run checkpoint serialised to stable storage (periodic
    /// `--checkpoint-every` snapshots and degraded-run final snapshots).
    #[inline]
    pub fn add_checkpoint_written(&self) {
        self.checkpoints_written.fetch_add(1, Ordering::Relaxed);
    }

    /// One pairwise payoff served from the cross-generation payoff cache
    /// (`evo_core::paycache`) without playing the game.
    #[inline]
    pub fn add_payoff_cache_hit(&self) {
        self.payoff_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// One pairwise payoff computed and inserted into the payoff cache.
    #[inline]
    pub fn add_payoff_cache_miss(&self) {
        self.payoff_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// One pairwise payoff computed analytically by Markov forward
    /// iteration (`ipd::markov::expected_outcome`) instead of round
    /// simulation — the expected-fitness fast path.
    #[inline]
    pub fn add_markov_fastpath_eval(&self) {
        self.markov_fastpath_evals.fetch_add(1, Ordering::Relaxed);
    }

    /// One simulation job admitted by the service layer's queue
    /// (`svc::JobQueue`, docs/SERVICE.md).
    #[inline]
    pub fn add_job_accepted(&self) {
        self.jobs_accepted.fetch_add(1, Ordering::Relaxed);
    }

    /// One simulation job refused admission (queue full, duplicate id, or
    /// invalid request).
    #[inline]
    pub fn add_job_rejected(&self) {
        self.jobs_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// One simulation job finished with a receipt (docs/SERVICE.md).
    #[inline]
    pub fn add_job_completed(&self) {
        self.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// One degraded simulation job automatically re-enqueued from its
    /// `DegradedRun` checkpoint (docs/SERVICE.md retry semantics).
    #[inline]
    pub fn add_job_retried(&self) {
        self.jobs_retried.fetch_add(1, Ordering::Relaxed);
    }

    /// One fixation replicate run to absorption or its generation cap
    /// (`evo_core::fixation`).
    #[inline]
    pub fn add_replicate_run(&self) {
        self.replicates_run.fetch_add(1, Ordering::Relaxed);
    }

    /// One fixation replicate ended with the mutant lineage fixed.
    #[inline]
    pub fn add_fixation(&self) {
        self.fixations.fetch_add(1, Ordering::Relaxed);
    }

    /// One fixation replicate ended with the mutant lineage extinct.
    #[inline]
    pub fn add_extinction(&self) {
        self.extinctions.fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy of every counter (each load
    /// is individually atomic; the set is not a cross-counter transaction).
    pub fn snapshot(&self) -> CounterSnapshot {
        CounterSnapshot {
            games_played: self.games_played.load(Ordering::Relaxed),
            rounds_simulated: self.rounds_simulated.load(Ordering::Relaxed),
            fermi_updates: self.fermi_updates.load(Ordering::Relaxed),
            mutations: self.mutations.load(Ordering::Relaxed),
            rng_streams: self.rng_streams.load(Ordering::Relaxed),
            comm_messages: self.comm_messages.load(Ordering::Relaxed),
            comm_bytes: self.comm_bytes.load(Ordering::Relaxed),
            collective_ops: self.collective_ops.load(Ordering::Relaxed),
            perf_model_evals: self.perf_model_evals.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            comm_timeouts: self.comm_timeouts.load(Ordering::Relaxed),
            checkpoints_written: self.checkpoints_written.load(Ordering::Relaxed),
            payoff_cache_hits: self.payoff_cache_hits.load(Ordering::Relaxed),
            payoff_cache_misses: self.payoff_cache_misses.load(Ordering::Relaxed),
            markov_fastpath_evals: self.markov_fastpath_evals.load(Ordering::Relaxed),
            jobs_accepted: self.jobs_accepted.load(Ordering::Relaxed),
            jobs_rejected: self.jobs_rejected.load(Ordering::Relaxed),
            jobs_completed: self.jobs_completed.load(Ordering::Relaxed),
            jobs_retried: self.jobs_retried.load(Ordering::Relaxed),
            replicates_run: self.replicates_run.load(Ordering::Relaxed),
            fixations: self.fixations.load(Ordering::Relaxed),
            extinctions: self.extinctions.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of the [`Counters`] — the `counters` field of the
/// run manifest. Field meanings and increment points are documented on the
/// corresponding [`Counters`] methods and in `docs/OBSERVABILITY.md`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Iterated games completed ([`Counters::add_game`]).
    pub games_played: u64,
    /// Game rounds simulated, summed over games.
    pub rounds_simulated: u64,
    /// Fermi pairwise comparisons resolved.
    pub fermi_updates: u64,
    /// Mutation strategies drawn.
    pub mutations: u64,
    /// Counter-based RNG streams opened.
    pub rng_streams: u64,
    /// Point-to-point messages sent through the virtual cluster.
    pub comm_messages: u64,
    /// Payload bytes moved through the virtual cluster (in-memory
    /// `size_of` of each message's payload type — a lower bound for
    /// heap-owning payloads).
    pub comm_bytes: u64,
    /// Collective operations initiated, summed over ranks.
    pub collective_ops: u64,
    /// Analytic performance-model evaluations.
    pub perf_model_evals: u64,
    /// Scheduled faults executed (message faults applied, ranks killed on
    /// plan). `#[serde(default)]`: absent in pre-fault-tolerance manifests.
    #[serde(default)]
    pub faults_injected: u64,
    /// Receive deadlines expired in the virtual cluster; always 0 in
    /// fault-free runs. `#[serde(default)]`: absent in older manifests.
    #[serde(default)]
    pub comm_timeouts: u64,
    /// Run checkpoints serialised. `#[serde(default)]`: absent in older
    /// manifests.
    #[serde(default)]
    pub checkpoints_written: u64,
    /// Pairwise payoffs served from the cross-generation payoff cache.
    /// `#[serde(default)]`: absent in pre-cache manifests.
    #[serde(default)]
    pub payoff_cache_hits: u64,
    /// Pairwise payoffs computed and inserted into the payoff cache.
    /// `#[serde(default)]`: absent in pre-cache manifests.
    #[serde(default)]
    pub payoff_cache_misses: u64,
    /// Pairwise payoffs computed analytically via Markov forward iteration
    /// (the expected-fitness fast path). `#[serde(default)]`: absent in
    /// older manifests.
    #[serde(default)]
    pub markov_fastpath_evals: u64,
    /// Simulation jobs admitted by the service layer (docs/SERVICE.md).
    /// `#[serde(default)]`: absent in pre-service manifests.
    #[serde(default)]
    pub jobs_accepted: u64,
    /// Simulation jobs refused admission (queue full, duplicate id,
    /// invalid request). `#[serde(default)]`: absent in older manifests.
    #[serde(default)]
    pub jobs_rejected: u64,
    /// Simulation jobs completed with a receipt. `#[serde(default)]`:
    /// absent in older manifests.
    #[serde(default)]
    pub jobs_completed: u64,
    /// Degraded simulation jobs automatically re-enqueued from their
    /// checkpoint. `#[serde(default)]`: absent in older manifests.
    #[serde(default)]
    pub jobs_retried: u64,
    /// Fixation replicates run to absorption or their generation cap
    /// (`evo_core::fixation`). `#[serde(default)]`: absent in older
    /// manifests.
    #[serde(default)]
    pub replicates_run: u64,
    /// Fixation replicates that ended with the mutant lineage fixed.
    /// `#[serde(default)]`: absent in older manifests.
    #[serde(default)]
    pub fixations: u64,
    /// Fixation replicates that ended with the mutant lineage extinct.
    /// `#[serde(default)]`: absent in older manifests.
    #[serde(default)]
    pub extinctions: u64,
}

impl CounterSnapshot {
    /// `true` if every counter in `self` is ≥ its value in `earlier` —
    /// the monotonicity the process-global counters guarantee.
    pub fn monotone_since(&self, earlier: &CounterSnapshot) -> bool {
        self.games_played >= earlier.games_played
            && self.rounds_simulated >= earlier.rounds_simulated
            && self.fermi_updates >= earlier.fermi_updates
            && self.mutations >= earlier.mutations
            && self.rng_streams >= earlier.rng_streams
            && self.comm_messages >= earlier.comm_messages
            && self.comm_bytes >= earlier.comm_bytes
            && self.collective_ops >= earlier.collective_ops
            && self.perf_model_evals >= earlier.perf_model_evals
            && self.faults_injected >= earlier.faults_injected
            && self.comm_timeouts >= earlier.comm_timeouts
            && self.checkpoints_written >= earlier.checkpoints_written
            && self.payoff_cache_hits >= earlier.payoff_cache_hits
            && self.payoff_cache_misses >= earlier.payoff_cache_misses
            && self.markov_fastpath_evals >= earlier.markov_fastpath_evals
            && self.jobs_accepted >= earlier.jobs_accepted
            && self.jobs_rejected >= earlier.jobs_rejected
            && self.jobs_completed >= earlier.jobs_completed
            && self.jobs_retried >= earlier.jobs_retried
            && self.replicates_run >= earlier.replicates_run
            && self.fixations >= earlier.fixations
            && self.extinctions >= earlier.extinctions
    }

    /// Per-counter difference `self − baseline` (saturating), attributing
    /// activity to the window between two snapshots. In a process with
    /// concurrent instrumented work the delta includes that work too;
    /// single-run tools (the CLI, the regenerators) run one engine at a
    /// time so the delta is exactly the run's activity.
    pub fn delta_since(&self, baseline: &CounterSnapshot) -> CounterSnapshot {
        CounterSnapshot {
            games_played: self.games_played.saturating_sub(baseline.games_played),
            rounds_simulated: self
                .rounds_simulated
                .saturating_sub(baseline.rounds_simulated),
            fermi_updates: self.fermi_updates.saturating_sub(baseline.fermi_updates),
            mutations: self.mutations.saturating_sub(baseline.mutations),
            rng_streams: self.rng_streams.saturating_sub(baseline.rng_streams),
            comm_messages: self.comm_messages.saturating_sub(baseline.comm_messages),
            comm_bytes: self.comm_bytes.saturating_sub(baseline.comm_bytes),
            collective_ops: self.collective_ops.saturating_sub(baseline.collective_ops),
            perf_model_evals: self
                .perf_model_evals
                .saturating_sub(baseline.perf_model_evals),
            faults_injected: self.faults_injected.saturating_sub(baseline.faults_injected),
            comm_timeouts: self.comm_timeouts.saturating_sub(baseline.comm_timeouts),
            checkpoints_written: self
                .checkpoints_written
                .saturating_sub(baseline.checkpoints_written),
            payoff_cache_hits: self
                .payoff_cache_hits
                .saturating_sub(baseline.payoff_cache_hits),
            payoff_cache_misses: self
                .payoff_cache_misses
                .saturating_sub(baseline.payoff_cache_misses),
            markov_fastpath_evals: self
                .markov_fastpath_evals
                .saturating_sub(baseline.markov_fastpath_evals),
            jobs_accepted: self.jobs_accepted.saturating_sub(baseline.jobs_accepted),
            jobs_rejected: self.jobs_rejected.saturating_sub(baseline.jobs_rejected),
            jobs_completed: self.jobs_completed.saturating_sub(baseline.jobs_completed),
            jobs_retried: self.jobs_retried.saturating_sub(baseline.jobs_retried),
            replicates_run: self.replicates_run.saturating_sub(baseline.replicates_run),
            fixations: self.fixations.saturating_sub(baseline.fixations),
            extinctions: self.extinctions.saturating_sub(baseline.extinctions),
        }
    }
}

// ------------------------------------------------------------ enable flag

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn the *timing* layer (spans, per-generation timings) on or off.
/// Counters are unaffected — they are always on. Off by default.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether the timing layer is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ------------------------------------------------------------------ spans

struct SpanStat {
    name: &'static str,
    count: u64,
    total_ns: u64,
}

static SPANS: Mutex<Vec<SpanStat>> = Mutex::new(Vec::new());

fn spans_lock() -> std::sync::MutexGuard<'static, Vec<SpanStat>> {
    SPANS.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Start timing a named scope. The returned guard records elapsed wall
/// time into the process-global span registry when dropped — but only if
/// observability was [`enabled`] when the span was opened; otherwise both
/// construction and drop are no-ops (one relaxed atomic load).
///
/// `name` should be a stable dotted path (`"population.generation"`); the
/// instrumented set is listed in `docs/OBSERVABILITY.md`.
pub fn span(name: &'static str) -> Span {
    Span {
        name,
        start: enabled().then(Instant::now),
    }
}

/// Guard returned by [`span`]; see there.
#[derive(Debug)]
#[must_use = "a span guard measures until it is dropped"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let ns = start.elapsed().as_nanos() as u64;
        let mut spans = spans_lock();
        match spans.iter_mut().find(|s| s.name == self.name) {
            Some(s) => {
                s.count += 1;
                s.total_ns += ns;
            }
            None => spans.push(SpanStat {
                name: self.name,
                count: 1,
                total_ns: ns,
            }),
        }
    }
}

/// Aggregated timing of one named span — the `spans` entries of the run
/// manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanSnapshot {
    /// The span's stable dotted name.
    pub name: String,
    /// Completed executions recorded.
    pub count: u64,
    /// Total wall time across executions, nanoseconds.
    pub total_ns: u64,
}

impl SpanSnapshot {
    /// Mean wall time per execution, nanoseconds (0 if never executed).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Snapshot of every span recorded so far in this process, in
/// first-recorded order.
pub fn span_snapshots() -> Vec<SpanSnapshot> {
    spans_lock()
        .iter()
        .map(|s| SpanSnapshot {
            name: s.name.to_string(),
            count: s.count,
            total_ns: s.total_ns,
        })
        .collect()
}

// -------------------------------------------------------------- histogram

/// Number of buckets in a [`Histogram`] (one per power of two of `u64`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A lock-free log₂ histogram: bucket `i` counts recorded values `v` with
/// `⌊log₂ v⌋ = i − 1` (bucket 0 counts `v = 0`). Cheap enough for hot
/// paths — one relaxed atomic increment per record.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// Bucket index for a value.
    #[inline]
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Record one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_of(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`] — the
/// `generation_ns_histogram` field of the run manifest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// `buckets[i]` counts values whose log₂ bucket is `i`; see
    /// [`Histogram`].
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Build a histogram snapshot directly from a slice of values (used at
    /// manifest-capture time to summarise a timing series).
    pub fn from_values(values: &[u64]) -> Self {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        h.snapshot()
    }

    /// Total values recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Inclusive upper bound of bucket `i` (`u64::MAX` for the last).
    pub fn bucket_upper_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }
}

/// The process-global histogram of per-generation wall times
/// (nanoseconds). The generation loops (`Population::step` and the
/// distributed engine) record into it when observability is [`enabled`].
pub fn generation_histogram() -> &'static Histogram {
    static GEN_HIST: Histogram = Histogram::new();
    &GEN_HIST
}

// --------------------------------------------------------------- manifest

/// The machine-readable record of one instrumented run — the single
/// telemetry format shared by `evogame-cli --manifest-out`, the quickstart
/// example, and the `bench` fig/table regenerators. Serialises to the JSON
/// schema documented in `docs/OBSERVABILITY.md`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Schema version ([`MANIFEST_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// The run's full parameter set, as the producer serialised it
    /// (`evo_core::Params` for engine runs).
    pub params: Value,
    /// The run's RNG seed (also inside `params`; duplicated for cheap
    /// indexing).
    pub seed: u64,
    /// Worker threads the run was configured with
    /// (`rayon::current_num_threads()` for the shared-memory engine; rank
    /// count for distributed runs).
    pub threads: usize,
    /// Generations the run executed.
    pub generations: u64,
    /// Total wall time of the run, seconds.
    pub elapsed_seconds: f64,
    /// Per-generation wall time, nanoseconds, in generation order. Empty
    /// when the timing layer was disabled; producers may cap the series
    /// (the engine keeps the first [`GENERATION_TIMING_CAP`] entries) —
    /// the histogram always covers every generation.
    pub per_generation_ns: Vec<u64>,
    /// Log₂ histogram summarising `per_generation_ns`.
    pub generation_ns_histogram: HistogramSnapshot,
    /// Counter activity attributed to the run
    /// ([`CounterSnapshot::delta_since`] a baseline taken at run start).
    pub counters: CounterSnapshot,
    /// Process-wide span timings at capture time (totals, not deltas).
    pub spans: Vec<SpanSnapshot>,
}

/// Maximum `per_generation_ns` entries the engine retains verbatim; runs
/// longer than this are summarised by the histogram beyond the cap.
pub const GENERATION_TIMING_CAP: usize = 100_000;

impl RunManifest {
    /// Capture a manifest for a finished run.
    ///
    /// `counters_at_start` is the [`Counters::snapshot`] taken when the
    /// run began; the manifest stores the delta so the numbers describe
    /// this run, not the whole process. `per_generation_ns` is the
    /// producer's timing series (empty when timing was disabled).
    pub fn capture(
        params: Value,
        seed: u64,
        threads: usize,
        generations: u64,
        elapsed_seconds: f64,
        counters_at_start: &CounterSnapshot,
        per_generation_ns: &[u64],
    ) -> Self {
        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            params,
            seed,
            threads,
            generations,
            elapsed_seconds,
            per_generation_ns: per_generation_ns.to_vec(),
            generation_ns_histogram: HistogramSnapshot::from_values(per_generation_ns),
            counters: counters().snapshot().delta_since(counters_at_start),
            spans: span_snapshots(),
        }
    }

    /// Render as pretty-printed JSON (the `--manifest-out` file format).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self)
            .expect("RunManifest serialisation is infallible")
    }

    /// Parse a manifest back from its JSON rendering.
    pub fn from_json(text: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_increment_and_stay_monotone() {
        let before = counters().snapshot();
        counters().add_game(200);
        counters().add_fermi_update();
        counters().add_mutation();
        counters().add_rng_stream();
        counters().add_comm_message(64);
        counters().add_collective_op();
        counters().add_perf_model_eval();
        counters().add_fault_injected();
        counters().add_comm_timeout();
        counters().add_checkpoint_written();
        counters().add_payoff_cache_hit();
        counters().add_payoff_cache_miss();
        counters().add_markov_fastpath_eval();
        counters().add_job_accepted();
        counters().add_job_rejected();
        counters().add_job_completed();
        counters().add_job_retried();
        counters().add_replicate_run();
        counters().add_fixation();
        counters().add_extinction();
        let after = counters().snapshot();
        assert!(after.monotone_since(&before));
        let delta = after.delta_since(&before);
        assert!(delta.games_played >= 1);
        assert!(delta.rounds_simulated >= 200);
        assert!(delta.comm_bytes >= 64);
        assert!(delta.faults_injected >= 1);
        assert!(delta.comm_timeouts >= 1);
        assert!(delta.checkpoints_written >= 1);
        assert!(delta.payoff_cache_hits >= 1);
        assert!(delta.payoff_cache_misses >= 1);
        assert!(delta.markov_fastpath_evals >= 1);
        assert!(delta.jobs_accepted >= 1);
        assert!(delta.jobs_rejected >= 1);
        assert!(delta.jobs_completed >= 1);
        assert!(delta.jobs_retried >= 1);
        assert!(delta.replicates_run >= 1);
        assert!(delta.fixations >= 1);
        assert!(delta.extinctions >= 1);
    }

    #[test]
    fn snapshot_without_fault_fields_parses_as_zero() {
        // Manifests written before the fault-tolerance counters existed
        // must still deserialise.
        let legacy = r#"{
            "games_played": 1, "rounds_simulated": 2, "fermi_updates": 3,
            "mutations": 4, "rng_streams": 5, "comm_messages": 6,
            "comm_bytes": 7, "collective_ops": 8, "perf_model_evals": 9
        }"#;
        let snap: CounterSnapshot = serde_json::from_str(legacy).unwrap();
        assert_eq!(snap.faults_injected, 0);
        assert_eq!(snap.comm_timeouts, 0);
        assert_eq!(snap.checkpoints_written, 0);
        assert_eq!(snap.payoff_cache_hits, 0);
        assert_eq!(snap.payoff_cache_misses, 0);
        assert_eq!(snap.markov_fastpath_evals, 0);
        assert_eq!(snap.jobs_accepted, 0);
        assert_eq!(snap.jobs_rejected, 0);
        assert_eq!(snap.jobs_completed, 0);
        assert_eq!(snap.jobs_retried, 0);
        assert_eq!(snap.replicates_run, 0);
        assert_eq!(snap.fixations, 0);
        assert_eq!(snap.extinctions, 0);
        assert_eq!(snap.games_played, 1);
    }

    #[test]
    fn disabled_spans_record_nothing_new() {
        set_enabled(false);
        let name = "obs.test.disabled";
        let before = span_snapshots()
            .iter()
            .find(|s| s.name == name)
            .map_or(0, |s| s.count);
        drop(span(name));
        let after = span_snapshots()
            .iter()
            .find(|s| s.name == name)
            .map_or(0, |s| s.count);
        assert_eq!(before, after);
    }

    #[test]
    fn enabled_spans_aggregate() {
        set_enabled(true);
        for _ in 0..3 {
            let _s = span("obs.test.enabled");
        }
        set_enabled(false);
        let snaps = span_snapshots();
        let s = snaps.iter().find(|s| s.name == "obs.test.enabled").unwrap();
        assert!(s.count >= 3);
        assert_eq!(s.mean_ns(), s.total_ns / s.count);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        h.record(0); // bucket 0
        h.record(1); // bucket 1
        h.record(2); // bucket 2
        h.record(3); // bucket 2
        h.record(1024); // bucket 11
        let snap = h.snapshot();
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 2);
        assert_eq!(snap.buckets[11], 1);
        assert_eq!(snap.count(), 5);
        assert_eq!(snap, HistogramSnapshot::from_values(&[0, 1, 2, 3, 1024]));
        assert_eq!(HistogramSnapshot::bucket_upper_bound(0), 0);
        assert_eq!(HistogramSnapshot::bucket_upper_bound(3), 7);
        assert_eq!(HistogramSnapshot::bucket_upper_bound(64), u64::MAX);
    }

    #[test]
    fn manifest_roundtrips_and_diffs_counters() {
        let baseline = counters().snapshot();
        counters().add_game(10);
        let m = RunManifest::capture(
            Value::Map(vec![("seed".into(), Value::UInt(7))]),
            7,
            4,
            2,
            1.25,
            &baseline,
            &[500, 700],
        );
        assert_eq!(m.schema_version, MANIFEST_SCHEMA_VERSION);
        assert!(m.counters.games_played >= 1);
        assert_eq!(m.generation_ns_histogram.count(), 2);
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(m, back);
    }
}
