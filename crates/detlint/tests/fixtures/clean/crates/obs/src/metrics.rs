//! Fixture: observability is exempt from atomics/wall-clock rules by path.

use std::sync::atomic::{AtomicU64, Ordering};

pub static TICKS: AtomicU64 = AtomicU64::new(0);

pub fn tick_ns() -> u64 {
    let t = std::time::Instant::now();
    TICKS.fetch_add(1, Ordering::Relaxed);
    t.elapsed().as_nanos() as u64
}
