//! Fixture: comm discipline — deadline-bound receives pass untouched, and
//! the one bare primitive carries its justification.

pub fn pull(comm: &Comm, src: Rank, deadline: Duration) -> Envelope {
    comm.recv_timeout(Some(src), Some(FITNESS_TAG), deadline)
}

pub fn drain(comm: &Comm) -> Envelope {
    // detlint: allow(comm-discipline, reason = "aliveness-aware substrate primitive; every caller bounds it with recv_timeout")
    comm.recv(None, None)
}
