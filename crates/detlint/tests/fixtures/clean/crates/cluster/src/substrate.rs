//! Fixture: message substrate with a documented file-wide atomics exemption.
// detlint: allow-file(atomics, reason = "models the MPI runtime's message counters; protocol determinism is pinned by higher-level tests")

use std::sync::atomic::{AtomicU64, Ordering};

pub static SENT: AtomicU64 = AtomicU64::new(0);

pub fn bump() {
    SENT.fetch_add(1, Ordering::Relaxed);
}
