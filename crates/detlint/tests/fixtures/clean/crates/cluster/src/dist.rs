//! Fixture: panic paths in the distributed hot-path file are typed or
//! carry a reasoned annotation.

pub fn settle(x: Option<u64>) -> Result<u64, DistError> {
    x.ok_or(DistError::MissingFitness)
}

pub fn confirm(x: Option<u64>) -> u64 {
    // detlint: allow(panic-path, reason = "invariant: the receive loop above fills the slot or returns Err before reaching this line")
    x.expect("slot filled by the loop above")
}
