//! Fixture: phase-discipline-clean engine — `plan` delegates every draw
//! to the sanctioned scheduler, `commit` is RNG-free, and test code may
//! draw whatever it likes.

pub fn plan(seed: u64, nature: &NatureAgent) -> Schedule {
    nature.schedule(seed)
}

pub fn commit(events: &[Event]) -> u64 {
    events.len() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_draws_are_exempt() {
        let rng = stream(7, Domain::Nature, 0, 0);
        let _ = rng;
    }
}
