//! Fixture: a clean engine crate root — deterministic containers, annotated
//! lookups, and tokens hidden in comments/strings that must not fire.
#![forbid(unsafe_code)]

use std::collections::BTreeMap;
// The interning table below is lookup-only; it is never iterated.
// detlint: allow(hash-iter, reason = "point-lookup cache (get/insert only); never iterated")
use std::collections::HashMap;

/// Mentioning HashMap or thread_rng in a doc comment must not fire.
pub const DOC: &str = "call thread_rng() and Instant::now() at your peril";

/// Accumulating over a *sorted* map is deterministic: float-order only
/// fires on HashMap/HashSet iteration.
pub fn total(m: &BTreeMap<u64, f64>) -> f64 {
    m.values().sum()
}

pub fn sorted_counts(xs: &[u64]) -> BTreeMap<u64, u64> {
    let mut m = BTreeMap::new();
    let cache: HashMap<u64, u64> = HashMap::new(); // detlint: allow(hash-iter, reason = "lookup-only scratch cache")
    drop(cache);
    for &x in xs {
        *m.entry(x).or_insert(0) += 1;
    }
    m
}
