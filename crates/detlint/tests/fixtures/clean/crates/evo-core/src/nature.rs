//! Fixture: Nature/Mutation streams drawn in their owning module.

pub fn decide(seed: u64, generation: u64) -> u64 {
    let n = stream(seed, Domain::Nature, 1, generation);
    let m = stream(seed, Domain::Mutation, 1, generation);
    n ^ m
}
