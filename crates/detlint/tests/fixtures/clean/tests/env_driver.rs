//! Fixture: workspace integration tests drive thread counts via the
//! environment, so `tests/` is exempt from the ambient rules.

#[test]
fn reads_env() {
    std::env::set_var("RAYON_NUM_THREADS", "2");
    let _ = std::time::Instant::now();
}
