//! Fixture: CLI tools may read ambient state, but still forbid unsafe code.
#![forbid(unsafe_code)]

fn main() {
    let seed = std::env::var("EVOGAME_SEED").ok();
    println!("{seed:?} {}", rand::random::<u64>());
}
