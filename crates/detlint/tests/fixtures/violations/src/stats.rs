//! Fixture: float accumulation in unordered-map iteration order — the
//! exact PR 2 fitness-sum bug shape, outside the engine crates where
//! hash-iter itself does not apply.

use std::collections::HashMap;

pub fn mean(m: &HashMap<u32, f64>) -> f64 {
    let total: f64 = m.values().sum();
    total / m.len() as f64
}

pub fn spread(m: &HashMap<u32, f64>) -> f64 {
    m.values().fold(0.0, |a, b| (a as f64).max(*b))
}
