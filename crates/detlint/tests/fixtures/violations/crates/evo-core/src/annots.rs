//! Fixture: malformed and unknown annotations.

use std::collections::HashMap; // detlint: allow(hash-iter)

// detlint: allow(no-such-rule, reason = "slug is not in the registry")
pub fn noop() {}

pub type Table = HashMap<u32, u32>; // detlint: allow(hash-iter, reason = "")
