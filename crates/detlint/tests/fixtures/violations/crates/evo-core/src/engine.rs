//! Fixture: phase purity — `plan` reaches an RNG constructor through a
//! helper, and `commit` constructs one directly.

pub fn plan(seed: u64) -> u64 {
    jitter(seed)
}

fn jitter(seed: u64) -> u64 {
    let rng = stream(seed, 3, 0, 0);
    rng
}

pub fn commit(seed: u64) -> u64 {
    seed_from_u64(seed)
}
