//! Fixture: RNG domains drawn outside their owning modules.

pub fn fault_schedule(seed: u64) -> u64 {
    let r = stream(seed, Domain::Faults, 0, 0);
    r
}

pub fn nature_decision(seed: u64, gen: u64) -> u64 {
    let r = stream(seed, Domain::Nature, 1, gen);
    r
}
