//! Fixture: ambient authority in engine code, one leak per line.

pub fn roll() -> u64 {
    let mut _rng = rand::thread_rng();
    rand::random()
}

pub fn uptime_ns() -> u64 {
    let t = std::time::Instant::now();
    let _ = std::time::SystemTime::now();
    t.elapsed().as_nanos() as u64
}

pub fn threads() -> Option<String> {
    std::env::var("RAYON_NUM_THREADS").ok()
}
