//! Fixture: deadline-free and wildcard-source receives in cluster code.

pub fn drain(comm: &Comm) -> Envelope {
    comm.recv(None, None)
}

pub fn pull(comm: &Comm, src: Rank) -> Envelope {
    comm.recv(Some(src), Some(FITNESS_TAG))
}
