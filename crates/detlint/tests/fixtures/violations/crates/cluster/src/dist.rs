//! Fixture: unannotated panic paths in the distributed hot-path file.

pub fn settle(x: Option<u64>) -> u64 {
    x.unwrap()
}

pub fn confirm(x: Option<u64>) -> u64 {
    x.expect("fixture invariant")
}

pub fn abort() -> u64 {
    panic!("fixture failure")
}
