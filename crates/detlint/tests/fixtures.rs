//! End-to-end fixture tests: the `violations/` tree trips every rule at the
//! expected file:line, the `clean/` tree (annotated allows, exempt paths,
//! tokens hidden in comments/strings) passes, and — the self-check — the
//! live workspace this tool ships in is itself clean.

use std::path::{Path, PathBuf};
use std::process::Command;

use detlint::{check_workspace, Report};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn hits(report: &Report) -> Vec<String> {
    report
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}:{}", d.rule, d.path, d.line))
        .collect()
}

#[test]
fn violations_fixture_trips_every_rule_at_the_expected_lines() {
    let report = check_workspace(&fixture("violations")).expect("fixture tree readable");
    let got = hits(&report);
    let expected = [
        // counters.rs: atomics outside crates/obs.
        "atomics:crates/analysis/src/counters.rs:3",
        "atomics:crates/analysis/src/counters.rs:5",
        "atomics:crates/analysis/src/counters.rs:8",
        // annots.rs: malformed allows do not exempt their lines.
        "bad-annotation:crates/evo-core/src/annots.rs:3",
        "hash-iter:crates/evo-core/src/annots.rs:3",
        "bad-annotation:crates/evo-core/src/annots.rs:5",
        "bad-annotation:crates/evo-core/src/annots.rs:8",
        "hash-iter:crates/evo-core/src/annots.rs:8",
        // lib.rs: missing forbid(unsafe_code) plus raw HashMap use.
        "forbid-unsafe:crates/evo-core/src/lib.rs:1",
        "hash-iter:crates/evo-core/src/lib.rs:3",
        "hash-iter:crates/evo-core/src/lib.rs:5",
        "hash-iter:crates/evo-core/src/lib.rs:6",
        // ambient.rs: one ambient-authority leak per line.
        "ambient-rng:crates/ipd/src/ambient.rs:4",
        "ambient-rng:crates/ipd/src/ambient.rs:5",
        "wall-clock:crates/ipd/src/ambient.rs:9",
        "wall-clock:crates/ipd/src/ambient.rs:10",
        "env-read:crates/ipd/src/ambient.rs:15",
        // engine.rs: RNG constructors reachable from plan (via a helper) and
        // commit (directly) — the structural call-graph walk reports the draw
        // site, not the root.
        "phase-purity:crates/evo-core/src/engine.rs:9",
        "phase-purity:crates/evo-core/src/engine.rs:14",
        // draws.rs: Faults and Nature streams drawn outside their owners.
        "rng-domain:crates/ipd/src/draws.rs:4",
        "rng-domain:crates/ipd/src/draws.rs:9",
        // exchange.rs: wildcard-source then deadline-free receives.
        "comm-discipline:crates/cluster/src/exchange.rs:4",
        "comm-discipline:crates/cluster/src/exchange.rs:8",
        // stats.rs: float accumulation over HashMap iteration order.
        "float-order:src/stats.rs:8",
        "float-order:src/stats.rs:13",
        // dist.rs: unannotated panic paths in the distributed hot path.
        "panic-path:crates/cluster/src/dist.rs:4",
        "panic-path:crates/cluster/src/dist.rs:8",
        "panic-path:crates/cluster/src/dist.rs:12",
    ];
    for want in expected {
        assert!(got.contains(&want.to_string()), "missing {want}; got {got:#?}");
    }
    assert_eq!(got.len(), expected.len(), "unexpected extras in {got:#?}");

    // Every registered rule (and the reserved bad-annotation slug) fired.
    for rule in detlint::rules::REGISTRY {
        assert!(
            report.diagnostics.iter().any(|d| d.rule == rule.slug),
            "rule {} never fired on the violations fixture",
            rule.slug
        );
    }
}

#[test]
fn clean_fixture_passes() {
    let report = check_workspace(&fixture("clean")).expect("fixture tree readable");
    assert!(
        report.is_clean(),
        "clean fixture should have no diagnostics: {:#?}",
        report.diagnostics
    );
    assert_eq!(report.files_scanned, 9);
}

#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = check_workspace(&root).expect("workspace readable");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.render()).collect();
    assert!(
        report.is_clean(),
        "the live workspace must satisfy its own determinism contract:\n{}",
        rendered.join("\n")
    );
    assert!(report.files_scanned > 50, "suspiciously few files scanned");

    // The registry carries both lint classes: six lexical rules and the five
    // structural contract checks. A partial registry means the self-check
    // above proved much less than it claims.
    assert_eq!(detlint::rules::REGISTRY.len(), 11);
    assert_eq!(
        detlint::rules::REGISTRY
            .iter()
            .filter(|r| r.is_structural())
            .count(),
        5
    );
}

#[test]
fn cli_exit_codes_and_formats() {
    let bin = env!("CARGO_BIN_EXE_detlint");

    // Violations: exit 1, text diagnostics carry file:line: [rule].
    let out = Command::new(bin)
        .args(["check", "--root"])
        .arg(fixture("violations"))
        .output()
        .expect("run detlint");
    assert_eq!(out.status.code(), Some(1));
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(
        text.contains("crates/ipd/src/ambient.rs:4: [ambient-rng]"),
        "{text}"
    );

    // Same tree as JSON: machine-readable, still exit 1.
    let out = Command::new(bin)
        .args(["check", "--format", "json", "--root"])
        .arg(fixture("violations"))
        .output()
        .expect("run detlint");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"rule\":\"hash-iter\""), "{json}");
    assert!(json.contains("\"violations\":28"), "{json}");

    // Same tree as SARIF: valid 2.1.0 envelope with a populated rule index.
    let out = Command::new(bin)
        .args(["check", "--format", "sarif", "--root"])
        .arg(fixture("violations"))
        .output()
        .expect("run detlint");
    assert_eq!(out.status.code(), Some(1));
    let sarif = String::from_utf8(out.stdout).unwrap();
    assert!(sarif.contains("\"version\":\"2.1.0\""), "{sarif}");
    assert!(sarif.contains("\"ruleId\":\"phase-purity\""), "{sarif}");

    // Class filter: the structural pass alone reports the 11 contract hits
    // plus the 3 malformed annotations (bad-annotation rides in both
    // classes so a broken allow can never dodge either stage), and still
    // exits 1.
    let out = Command::new(bin)
        .args(["check", "--rules", "structural", "--format", "json", "--root"])
        .arg(fixture("violations"))
        .output()
        .expect("run detlint");
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"violations\":14"), "{json}");
    assert!(!json.contains("\"rule\":\"hash-iter\""), "{json}");

    // Clean tree: exit 0.
    let out = Command::new(bin)
        .args(["check", "--root"])
        .arg(fixture("clean"))
        .output()
        .expect("run detlint");
    assert_eq!(out.status.code(), Some(0));

    // Unknown flag: usage error, exit 2.
    let out = Command::new(bin)
        .arg("--bogus")
        .output()
        .expect("run detlint");
    assert_eq!(out.status.code(), Some(2));
}
