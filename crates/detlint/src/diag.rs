//! Diagnostics and report rendering (text and JSON).

/// One violation at a file/line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule slug ([`crate::rules::BAD_ANNOTATION`] for malformed allows).
    pub rule: String,
    /// Workspace-relative `/`-separated path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

impl Diagnostic {
    /// `path:line: [rule] message` — the grep/editor-friendly form.
    pub fn render(&self) -> String {
        format!("{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)
    }
}

/// The outcome of a workspace check.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All violations, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// `true` when the workspace honours the contract.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render the machine-readable JSON form:
    /// `{"files_scanned":N,"violations":N,"diagnostics":[{...}]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"files_scanned\":{},", self.files_scanned));
        out.push_str(&format!("\"violations\":{},", self.diagnostics.len()));
        out.push_str("\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"rule\":{},\"path\":{},\"line\":{},\"message\":{}}}",
                json_string(&d.rule),
                json_string(&d.path),
                d.line,
                json_string(&d.message),
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Escape `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_grep_friendly_text() {
        let d = Diagnostic {
            rule: "hash-iter".into(),
            path: "crates/evo-core/src/fitness.rs".into(),
            line: 238,
            message: "HashMap forbidden here".into(),
        };
        assert_eq!(
            d.render(),
            "crates/evo-core/src/fitness.rs:238: [hash-iter] HashMap forbidden here"
        );
    }

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn report_json_shape() {
        let r = Report {
            files_scanned: 2,
            diagnostics: vec![Diagnostic {
                rule: "atomics".into(),
                path: "a.rs".into(),
                line: 1,
                message: "m".into(),
            }],
        };
        assert_eq!(
            r.to_json(),
            "{\"files_scanned\":2,\"violations\":1,\"diagnostics\":[{\"rule\":\"atomics\",\
             \"path\":\"a.rs\",\"line\":1,\"message\":\"m\"}]}"
        );
    }
}
