//! Lexical cleaning: split Rust source into per-line *code* and *comment*
//! channels.
//!
//! Rule matching must not fire on tokens that appear inside string literals
//! or comments (`"HashMap"` in a diagnostic message, `Instant::now` in a
//! doc sentence), and allow-annotations live *only* in comments. A full
//! parse is overkill for that; a small lexer that tracks strings, char
//! literals, and (nested) block comments is enough, and keeps `detlint`
//! dependency-free.
//!
//! Known limits (documented in `docs/STATIC_ANALYSIS.md`): raw strings are
//! recognised for the common `r"…"`/`r#"…"#` shapes, and macro-generated
//! code is invisible to a lexical pass.

/// One source line, split into its code and comment parts.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CleanedLine {
    /// Code with string/char-literal contents removed (quotes retained).
    pub code: String,
    /// Concatenated text of every comment on the line.
    pub comment: String,
}

enum State {
    Normal,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

/// `true` for characters that can appear inside an identifier.
pub fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Lex `source` into per-line code/comment channels.
pub fn clean(source: &str) -> Vec<CleanedLine> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut cur = CleanedLine::default();
    let mut state = State::Normal;
    let mut i = 0;
    let at = |j: usize| chars.get(j).copied();
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(state, State::LineComment) {
                state = State::Normal;
            }
            lines.push(std::mem::take(&mut cur));
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                if c == '/' && at(i + 1) == Some('/') {
                    state = State::LineComment;
                    i += 2;
                } else if c == '/' && at(i + 1) == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Str;
                    i += 1;
                } else if c == 'r'
                    && raw_prefix_ok(&chars, i)
                    && raw_str_hashes(&chars, i + 1).is_some()
                {
                    let hashes = raw_str_hashes(&chars, i + 1).expect("just checked");
                    cur.code.push('"');
                    state = State::RawStr(hashes);
                    i += 2 + hashes as usize;
                } else if c == '\'' {
                    // Char/byte-char literal vs lifetime: a literal is '\…'
                    // or 'x' (the `b` prefix of `b'x'` stays in the code
                    // channel; the quote lookahead is identical).
                    if at(i + 1) == Some('\\') {
                        i += 2; // skip the backslash and escaped char
                        while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                            i += 1;
                        }
                        cur.code.push_str("''");
                        i += 1;
                    } else if at(i + 2) == Some('\'') {
                        cur.code.push_str("''");
                        i += 3;
                    } else {
                        cur.code.push('\'');
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && at(i + 1) == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && at(i + 1) == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    state = State::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && closes_raw(&chars, i + 1, hashes) {
                    cur.code.push('"');
                    state = State::Normal;
                    i += 1 + hashes as usize;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// `true` when an `r` at index `i` can start a raw (or byte-raw) string:
/// it must not be the tail of an identifier, except for the single-`b`
/// prefix of `br"…"`/`br#"…"#`, which itself must sit at a boundary.
fn raw_prefix_ok(chars: &[char], i: usize) -> bool {
    match i.checked_sub(1).map(|j| chars[j]) {
        None => true,
        Some('b') => i < 2 || !is_ident_char(chars[i - 2]),
        Some(p) => !is_ident_char(p),
    }
}

/// If `chars[from..]` opens a raw string (`"` or `#…#"`), the hash count.
fn raw_str_hashes(chars: &[char], from: usize) -> Option<u32> {
    let mut hashes = 0;
    let mut j = from;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

fn closes_raw(chars: &[char], from: usize, hashes: u32) -> bool {
    (0..hashes as usize).all(|k| chars.get(from + k) == Some(&'#'))
}

/// Find `token` in `code` at identifier boundaries; returns a byte column.
///
/// Tokens may contain `::`; the characters immediately before and after a
/// candidate match must not be identifier characters, so `FxHashMap` does
/// not match `HashMap` but `std::time::Instant::now` matches
/// `Instant::now`.
pub fn find_token(code: &str, token: &str) -> Option<usize> {
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !is_ident_char(code[..abs].chars().next_back().expect("non-empty prefix"));
        let after = code[abs + token.len()..].chars().next();
        let after_ok = after.is_none_or(|c| !is_ident_char(c));
        if before_ok && after_ok {
            return Some(abs);
        }
        start = abs + token.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_code_and_line_comment() {
        let lines = clean("let x = 1; // detlint: note\nlet y = 2;\n");
        assert_eq!(lines[0].code, "let x = 1; ");
        assert_eq!(lines[0].comment, " detlint: note");
        assert_eq!(lines[1].code, "let y = 2;");
    }

    #[test]
    fn string_contents_are_dropped() {
        let lines = clean("let s = \"HashMap inside a string\";");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains("\"\""));
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let lines = clean("let s = \"a \\\" HashMap b\"; let t = 1;");
        assert!(!lines[0].code.contains("HashMap"));
        assert!(lines[0].code.contains("let t = 1;"));
    }

    #[test]
    fn raw_strings_are_dropped() {
        let lines = clean("let s = r#\"Instant::now \"quoted\"\"#; let u = 2;");
        assert!(!lines[0].code.contains("Instant::now"));
        assert!(lines[0].code.contains("let u = 2;"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let lines = clean("a /* one /* two */ still */ b\nc /* open\nHashMap\n*/ d\n");
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
        assert_eq!(lines[2].code, "");
        assert_eq!(lines[2].comment, "HashMap");
        assert_eq!(lines[3].code, " d");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = clean("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert!(lines[0].code.contains("'a"));
    }

    #[test]
    fn char_literals_are_dropped() {
        let lines = clean("let c = 'x'; let q = '\\''; let n = '\\n'; done");
        assert!(lines[0].code.contains("done"));
        assert!(!lines[0].code.contains('x'));
    }

    #[test]
    fn byte_raw_strings_are_dropped() {
        // `br#"…"#` must behave like `r#"…"#`: embedded quotes and rule
        // tokens never leak into the code channel.
        let lines = clean("let s = br#\"say \"HashMap\" loudly\"#; let u = 2;");
        assert!(!lines[0].code.contains("HashMap"), "{:?}", lines[0]);
        assert!(lines[0].code.contains("let u = 2;"), "{:?}", lines[0]);
        let lines = clean("let s = br\"Instant::now\"; tail");
        assert!(!lines[0].code.contains("Instant::now"), "{:?}", lines[0]);
        assert!(lines[0].code.contains("tail"), "{:?}", lines[0]);
        // `abr#"…"#` is an identifier followed by `#` noise, not a raw
        // string opener; the lexer must not swallow the rest of the line.
        let lines = clean("let x = abr; let y = 1;");
        assert!(lines[0].code.contains("let y = 1;"), "{:?}", lines[0]);
    }

    #[test]
    fn byte_strings_and_byte_chars_are_dropped() {
        let lines = clean("let s = b\"HashMap bytes\"; let c = b'x'; done");
        assert!(!lines[0].code.contains("HashMap"), "{:?}", lines[0]);
        assert!(!lines[0].code.contains('x'), "{:?}", lines[0]);
        assert!(lines[0].code.contains("done"), "{:?}", lines[0]);
        let lines = clean("let nl = b'\\n'; let q = b'\\''; after");
        assert!(lines[0].code.contains("after"), "{:?}", lines[0]);
    }

    #[test]
    fn lifetime_followed_by_char_literal() {
        // The `'a` must survive as a lifetime while `'x'` is dropped.
        let lines = clean("fn f<'a>(s: &'a str, c: char) -> bool { c == 'x' }");
        assert!(lines[0].code.contains("'a"), "{:?}", lines[0]);
        assert!(!lines[0].code.contains('x'), "{:?}", lines[0]);
    }

    #[test]
    fn token_boundaries() {
        assert!(find_token("use std::collections::HashMap;", "HashMap").is_some());
        assert!(find_token("type FxHashMap = ();", "HashMap").is_none());
        assert!(find_token("HashMapper", "HashMap").is_none());
        assert!(find_token("std::time::Instant::now()", "Instant::now").is_some());
        assert!(find_token("std::env::var(k)", "std::env").is_some());
        assert!(find_token("my_std::envy", "std::env").is_none());
    }
}
