//! The rules registry: what the determinism contract forbids, and where.
//!
//! Every rule is data — a slug, a human summary, and a [`RuleKind`] saying
//! how it matches. Adding a pass (say, an RNG-stream-discipline rule that
//! forbids constructing `ChaCha8Rng` outside `evo_core::rngstream`) is a
//! new entry in [`REGISTRY`], not new traversal machinery.

use crate::contracts;
use crate::paths;

/// How a rule matches.
#[derive(Debug, Clone, Copy)]
pub enum RuleKind {
    /// Forbid any of `tokens` (identifier-boundary match on comment- and
    /// string-stripped code) in files selected by `scope`.
    TokenDeny {
        /// Forbidden tokens; may contain `::` path segments.
        tokens: &'static [&'static str],
        /// Which files the rule applies to.
        scope: Scope,
    },
    /// Require `#![forbid(unsafe_code)]` in every crate and binary root.
    RequireForbidUnsafe,
    /// A structural contract check over parsed fn scopes / call graph
    /// (see [`crate::contracts`]); test context is exempt.
    Structural(contracts::Check),
}

/// File scope of a token rule.
#[derive(Debug, Clone, Copy)]
pub enum Scope {
    /// The deterministic engine crates (ipd, evo-core, cluster, analysis).
    EngineCrates,
    /// Everywhere except the listed path prefixes.
    Outside(&'static [&'static str]),
}

/// One static-analysis rule.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable identifier used in diagnostics and `allow(...)` annotations.
    pub slug: &'static str,
    /// One-line summary for `detlint rules` and diagnostics.
    pub summary: &'static str,
    /// How violating the rule breaks the bit-identical-results contract.
    pub rationale: &'static str,
    /// Match behaviour.
    pub kind: RuleKind,
}

/// Crates whose results must be bit-identical at any thread count.
pub const ENGINE_CRATES: &[&str] = &[
    "crates/ipd/",
    "crates/evo-core/",
    "crates/cluster/",
    "crates/analysis/",
];

/// Paths allowed to read ambient authority (wall clocks, env, OS RNG):
/// observability, benchmarks, tooling, the CLI, and workspace-level
/// integration tests (which drive thread counts via the environment).
pub const AMBIENT_EXEMPT: &[&str] = &[
    "crates/obs/",
    "crates/bench/",
    "crates/detlint/",
    "src/bin/",
    "tests/",
];

/// Paths allowed to use atomics: the observability counters only.
pub const ATOMICS_EXEMPT: &[&str] = &["crates/obs/"];

/// The reserved slug under which malformed annotations are reported.
pub const BAD_ANNOTATION: &str = "bad-annotation";

/// All rules, in reporting order.
pub const REGISTRY: &[Rule] = &[
    Rule {
        slug: "hash-iter",
        summary: "no HashMap/HashSet in engine crates",
        rationale: "std hashing is randomly seeded per process, so iteration order — and any \
                    float accumulation or record emitted in that order — changes run to run. \
                    Use BTreeMap/BTreeSet or sorted Vecs; annotate sites that never iterate.",
        kind: RuleKind::TokenDeny {
            tokens: &["HashMap", "HashSet"],
            scope: Scope::EngineCrates,
        },
    },
    Rule {
        slug: "ambient-rng",
        summary: "no thread_rng/rand::random outside obs, bench, tooling, and the CLI",
        rationale: "ambient OS-seeded randomness bypasses the per-SSet counter-based streams \
                    (evo_core::rngstream) that make runs reproducible from a seed.",
        kind: RuleKind::TokenDeny {
            tokens: &["thread_rng", "rand::random"],
            scope: Scope::Outside(AMBIENT_EXEMPT),
        },
    },
    Rule {
        slug: "wall-clock",
        summary: "no SystemTime::now/Instant::now outside obs, bench, tooling, and the CLI",
        rationale: "wall-clock reads in engine code are a nondeterministic input one branch \
                    away from contaminating a trajectory. Timing belongs to the observability \
                    layer; engine sites that only feed obs carry an annotation saying so.",
        kind: RuleKind::TokenDeny {
            tokens: &["SystemTime::now", "Instant::now"],
            scope: Scope::Outside(AMBIENT_EXEMPT),
        },
    },
    Rule {
        slug: "env-read",
        summary: "no std::env reads outside obs, bench, tooling, and the CLI",
        rationale: "environment variables are per-process ambient state; an engine that \
                    consults them cannot promise the same trajectory on another machine.",
        kind: RuleKind::TokenDeny {
            tokens: &["std::env"],
            scope: Scope::Outside(AMBIENT_EXEMPT),
        },
    },
    Rule {
        slug: "atomics",
        summary: "atomics and memory orderings confined to crates/obs",
        rationale: "racy read-modify-write state in simulation logic makes results depend on \
                    thread interleaving. Counters live in obs (and never feed back into the \
                    engine); the virtual-cluster substrate documents its exemption in place.",
        kind: RuleKind::TokenDeny {
            tokens: &[
                "sync::atomic",
                "AtomicBool",
                "AtomicUsize",
                "AtomicIsize",
                "AtomicU8",
                "AtomicU16",
                "AtomicU32",
                "AtomicU64",
                "AtomicI8",
                "AtomicI16",
                "AtomicI32",
                "AtomicI64",
                "AtomicPtr",
                "Ordering::Relaxed",
                "Ordering::Acquire",
                "Ordering::Release",
                "Ordering::AcqRel",
                "Ordering::SeqCst",
            ],
            scope: Scope::Outside(ATOMICS_EXEMPT),
        },
    },
    Rule {
        slug: "forbid-unsafe",
        summary: "#![forbid(unsafe_code)] required in every crate and binary root",
        rationale: "unsafe code can smuggle in data races and uninitialised reads that no \
                    other rule here can see; the workspace opts out wholesale.",
        kind: RuleKind::RequireForbidUnsafe,
    },
    Rule {
        slug: "phase-purity",
        summary: "no RNG constructor reachable from engine::plan or engine::commit",
        rationale: "the generation transition is plan -> provide -> apply: plan draws only via \
                    NatureAgent::schedule and commit is RNG-free (docs/ENGINE_CORE.md). A \
                    constructor reachable through any call chain re-orders stream draws between \
                    backends and silently forks trajectories; the rule walks the approximate \
                    intra-workspace call graph so indirection does not hide the draw.",
        kind: RuleKind::Structural(contracts::Check::PhasePurity),
    },
    Rule {
        slug: "rng-domain",
        summary: "each Domain::X stream drawn only in its owning module",
        rationale: "the (seed, domain, entity, generation) keying makes streams collision-free \
                    only while each domain has one owner: Faults in cluster::faults, Nature and \
                    Mutation in evo-core's nature, Init in population/spatial setup. A draw \
                    elsewhere reuses counters another module will also use, correlating what \
                    the paper's model requires to be independent randomness.",
        kind: RuleKind::Structural(contracts::Check::RngDomain),
    },
    Rule {
        slug: "comm-discipline",
        summary: "no deadline-free or wildcard-source recv in cluster code",
        rationale: "a bare recv waits forever on a peer that may already be dead — the exact \
                    gather deadlock fault injection exposed in PR 5 (docs/FAULT_TOLERANCE.md). \
                    Receives go through the deadline-bound wrappers (recv_deadline/recv_timeout) \
                    with an explicit source; the few aliveness-aware primitives underneath \
                    carry annotations explaining why they are safe.",
        kind: RuleKind::Structural(contracts::Check::CommDiscipline),
    },
    Rule {
        slug: "float-order",
        summary: "no sum/fold accumulation over HashMap/HashSet iteration",
        rationale: "float addition is not associative, so accumulating f64 payoffs in the \
                    per-process-random order of a hash map yields different bits per run — the \
                    exact fitness-sum bug PR 2 fixed by moving to BTreeMap. The structural form \
                    catches the chain (.values()...sum()) even when hash-iter is annotated away \
                    for lookup-only use.",
        kind: RuleKind::Structural(contracts::Check::FloatOrder),
    },
    Rule {
        slug: "panic-path",
        summary: "unwrap/expect/panic in dist/engine hot paths must be typed or justified",
        rationale: "a panic inside a rank thread kills that rank mid-protocol and turns every \
                    peer's matching recv into a hang; the fault-tolerance layer exists to turn \
                    failures into typed DistError outcomes instead. Hot-path panic sites either \
                    become typed errors or carry an annotation naming the invariant that makes \
                    them unreachable.",
        kind: RuleKind::Structural(contracts::Check::PanicPath),
    },
];

/// Look up a rule by slug.
pub fn rule(slug: &str) -> Option<&'static Rule> {
    REGISTRY.iter().find(|r| r.slug == slug)
}

impl Scope {
    /// Does this scope select `rel_path` (workspace-relative, `/`-separated)?
    pub fn applies(self, rel_path: &str) -> bool {
        match self {
            Scope::EngineCrates => ENGINE_CRATES.iter().any(|p| rel_path.starts_with(p)),
            Scope::Outside(exempt) => !exempt.iter().any(|p| rel_path.starts_with(p)),
        }
    }
}

impl Rule {
    /// Does this rule inspect `rel_path` at all?
    pub fn applies(&self, rel_path: &str) -> bool {
        match self.kind {
            RuleKind::TokenDeny { scope, .. } => scope.applies(rel_path),
            RuleKind::RequireForbidUnsafe => paths::is_target_root(rel_path),
            RuleKind::Structural(check) => contracts::in_scope(check, rel_path),
        }
    }

    /// Is this a structural (parser-backed) rule, as opposed to lexical?
    pub fn is_structural(&self) -> bool {
        matches!(self.kind, RuleKind::Structural(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_are_unique_and_kebab_case() {
        for (i, r) in REGISTRY.iter().enumerate() {
            assert!(
                r.slug
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c == '-'),
                "{}",
                r.slug
            );
            assert!(
                REGISTRY[i + 1..].iter().all(|o| o.slug != r.slug),
                "duplicate slug {}",
                r.slug
            );
        }
        assert!(rule(BAD_ANNOTATION).is_none(), "bad-annotation is reserved");
    }

    #[test]
    fn engine_scope_selects_engine_crates_only() {
        let s = Scope::EngineCrates;
        assert!(s.applies("crates/evo-core/src/fitness.rs"));
        assert!(s.applies("crates/ipd/tests/proptests.rs"));
        assert!(!s.applies("crates/obs/src/lib.rs"));
        assert!(!s.applies("src/lib.rs"));
        assert!(!s.applies("tests/determinism.rs"));
    }

    #[test]
    fn outside_scope_exempts_prefixes() {
        let s = Scope::Outside(AMBIENT_EXEMPT);
        assert!(s.applies("crates/evo-core/src/population.rs"));
        assert!(s.applies("src/lib.rs"));
        assert!(!s.applies("crates/obs/src/lib.rs"));
        assert!(!s.applies("src/bin/evogame-cli.rs"));
        assert!(!s.applies("tests/observability.rs"));
    }
}
