//! Structural pass: a lightweight item/block parser over the cleaned token
//! stream.
//!
//! The lexical rules in [`crate::rules`] match forbidden tokens anywhere in
//! a file; the contract rules in [`crate::contracts`] need more shape than
//! that — *which function* a token sits in, whether that function is test
//! code, and an approximate picture of who calls whom across the
//! workspace. This module recovers exactly that much structure and no
//! more: module paths (from the file path plus inline `mod` items), `fn`
//! scopes with brace-matched body spans, `#[cfg(test)]`/`#[test]`
//! detection, and per-body call references suitable for name-based call
//! graph resolution.
//!
//! It is a token-shape parser, not a Rust parser: generics, closures, and
//! macros are traversed by bracket balance only. The known approximations
//! (documented in `docs/STATIC_ANALYSIS.md`) are the price of staying
//! dependency-free, and every one of them fails toward *missing* an edge,
//! which the contract rules compensate for with conservative token checks
//! at the leaves.

use crate::clean::CleanedLine;

/// One code token: an identifier/number run or a single punctuation char.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token text (identifiers keep their full run; punct is one char).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

impl Tok {
    /// `true` when the token is an identifier (or keyword/number) run.
    pub fn is_ident(&self) -> bool {
        self.text
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
    }
}

/// Flatten cleaned code channels into a token stream.
pub fn tokenize(lines: &[CleanedLine]) -> Vec<Tok> {
    let mut toks = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let mut chars = line.code.chars().peekable();
        while let Some(c) = chars.next() {
            if c.is_whitespace() {
                continue;
            }
            if c.is_ascii_alphanumeric() || c == '_' {
                let mut text = String::new();
                text.push(c);
                while let Some(&n) = chars.peek() {
                    if n.is_ascii_alphanumeric() || n == '_' {
                        text.push(n);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok { text, line: i + 1 });
            } else {
                toks.push(Tok {
                    text: c.to_string(),
                    line: i + 1,
                });
            }
        }
    }
    toks
}

/// One function with a parsed body.
#[derive(Debug, Clone)]
pub struct FnScope {
    /// Bare function name.
    pub name: String,
    /// Qualified name: crate/module path, enclosing `impl`/`trait`/`mod`
    /// names, then the function name, `::`-joined.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// In test context: `#[test]`, inside a `#[cfg(test)]` module, or in a
    /// file that is test-only by path.
    pub is_test: bool,
    /// Token-index range of the body contents (between the outer braces).
    pub body: (usize, usize),
}

/// A call reference found inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Path segments as written (`foo`, or `Type::method` as two segments).
    pub path: Vec<String>,
    /// 1-based line of the called name.
    pub line: usize,
}

impl Call {
    /// The final path segment — the name used for index resolution.
    pub fn name(&self) -> &str {
        self.path.last().map_or("", String::as_str)
    }
}

/// Parsed structure of one file.
#[derive(Debug, Clone)]
pub struct FileStructure {
    /// The token stream the spans below index into.
    pub toks: Vec<Tok>,
    /// Every `fn` with a body, in source order.
    pub fns: Vec<FnScope>,
    /// Line ranges (1-based, inclusive) that are test context.
    test_spans: Vec<(usize, usize)>,
    /// Whole file is test context by path (`tests/`, `benches/`).
    all_test: bool,
}

/// `true` for paths that are test/bench code wholesale.
pub fn is_test_path(rel_path: &str) -> bool {
    rel_path.starts_with("tests/")
        || rel_path.contains("/tests/")
        || rel_path.starts_with("benches/")
        || rel_path.contains("/benches/")
        || rel_path.contains("/examples/")
}

/// Module path derived from the workspace-relative file path:
/// `crates/evo-core/src/engine.rs` → `["evo_core", "engine"]`.
fn module_path(rel_path: &str) -> Vec<String> {
    let parts: Vec<&str> = rel_path.split('/').collect();
    let mut out = Vec::new();
    let rest = if parts.first() == Some(&"crates") && parts.len() > 2 {
        out.push(parts[1].replace('-', "_"));
        &parts[2..]
    } else {
        &parts[..]
    };
    for (i, p) in rest.iter().enumerate() {
        if *p == "src" && i == 0 {
            continue;
        }
        let name = p.strip_suffix(".rs").unwrap_or(p);
        if matches!(name, "lib" | "main" | "mod") {
            continue;
        }
        out.push(name.replace('-', "_"));
    }
    out
}

enum ScopeKind {
    /// `mod`, `impl`, `trait` — contributes a path segment when named.
    Item(Option<String>),
    /// A function body; index into `fns`.
    Fn(usize),
    /// Any other brace pair (blocks, match arms, struct literals, …).
    Block,
}

struct Scope {
    kind: ScopeKind,
    is_test: bool,
}

impl FileStructure {
    /// Parse the cleaned lines of `rel_path`.
    pub fn parse(rel_path: &str, lines: &[CleanedLine]) -> FileStructure {
        let toks = tokenize(lines);
        let all_test = is_test_path(rel_path);
        let base = module_path(rel_path);
        let mut fns: Vec<FnScope> = Vec::new();
        let mut test_spans: Vec<(usize, usize)> = Vec::new();
        let mut scopes: Vec<Scope> = Vec::new();
        // Open lines of scopes that started a test span, matched at pop.
        let mut test_opens: Vec<usize> = Vec::new();
        let mut pending_test = false;
        let mut i = 0;

        let in_test = |scopes: &[Scope]| scopes.iter().any(|s| s.is_test);
        let qual_of = |scopes: &[Scope], base: &[String], name: &str| {
            let mut q: Vec<String> = base.to_vec();
            for s in scopes {
                match &s.kind {
                    ScopeKind::Item(Some(n)) => q.push(n.clone()),
                    ScopeKind::Fn(_) | ScopeKind::Item(None) | ScopeKind::Block => {}
                }
            }
            q.push(name.to_string());
            q.join("::")
        };

        while i < toks.len() {
            let t = &toks[i];
            match t.text.as_str() {
                "#" => {
                    // Attribute: `#[...]` or `#![...]`; note test markers.
                    let mut j = i + 1;
                    if toks.get(j).is_some_and(|t| t.text == "!") {
                        j += 1;
                    }
                    if toks.get(j).is_some_and(|t| t.text == "[") {
                        let mut depth = 0usize;
                        let mut saw_test = false;
                        let mut saw_not = false;
                        while j < toks.len() {
                            match toks[j].text.as_str() {
                                "[" => depth += 1,
                                "]" => {
                                    depth -= 1;
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                "test" => saw_test = true,
                                "not" => saw_not = true,
                                _ => {}
                            }
                            j += 1;
                        }
                        if saw_test && !saw_not {
                            pending_test = true;
                        }
                        i = j + 1;
                        continue;
                    }
                    i += 1;
                }
                "mod" | "trait" => {
                    let name = toks.get(i + 1).filter(|t| t.is_ident()).map(|t| t.text.clone());
                    // Scan to the opening brace (or `;` for `mod foo;` /
                    // trait bounds in where clauses never reach here).
                    let mut j = i + 1;
                    while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                        j += 1;
                    }
                    if toks.get(j).is_some_and(|t| t.text == "{") {
                        let test = pending_test || in_test(&scopes);
                        if test && !in_test(&scopes) {
                            test_opens.push(toks[j].line);
                            test_spans.push((toks[j].line, 0)); // closed at pop
                        }
                        scopes.push(Scope {
                            kind: ScopeKind::Item(name),
                            is_test: test,
                        });
                    }
                    pending_test = false;
                    i = j + 1;
                }
                "impl" => {
                    // `impl<G> Trait for Type {` / `impl Type {`; the path
                    // segment is the *type* (after `for` when present).
                    let mut j = i + 1;
                    let mut angle = 0i32;
                    let mut after_for = false;
                    let mut in_where = false;
                    let mut first: Option<String> = None;
                    let mut chosen: Option<String> = None;
                    while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
                        match toks[j].text.as_str() {
                            "<" => angle += 1,
                            ">" => angle -= 1,
                            "where" if angle == 0 => in_where = true,
                            "for" if angle == 0 && !in_where => {
                                after_for = true;
                                chosen = None;
                            }
                            _ if angle == 0 && !in_where && toks[j].is_ident() => {
                                let seg = toks[j].text.clone();
                                // Keep the last segment of the current path
                                // (`fmt::Display` → `Display`).
                                if after_for || first.is_none() {
                                    if after_for {
                                        chosen = Some(seg);
                                    } else {
                                        first = Some(seg);
                                    }
                                } else if !after_for && chosen.is_none() {
                                    first = Some(seg);
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    let name = chosen.or(first);
                    if toks.get(j).is_some_and(|t| t.text == "{") {
                        let test = pending_test || in_test(&scopes);
                        if test && !in_test(&scopes) {
                            test_opens.push(toks[j].line);
                            test_spans.push((toks[j].line, 0));
                        }
                        scopes.push(Scope {
                            kind: ScopeKind::Item(name),
                            is_test: test,
                        });
                    }
                    pending_test = false;
                    i = j + 1;
                }
                "fn" => {
                    let Some(name_tok) = toks.get(i + 1).filter(|t| t.is_ident()) else {
                        // `Fn(..)` trait sugar or `fn()` pointer type.
                        pending_test = false;
                        i += 1;
                        continue;
                    };
                    let name = name_tok.text.clone();
                    let fn_line = t.line;
                    // Scan the signature for the body `{` (paren-balanced,
                    // so default args/`where` clauses are crossed safely);
                    // `;` at depth 0 means a bodyless trait method.
                    let mut j = i + 2;
                    let mut paren = 0i32;
                    while j < toks.len() {
                        match toks[j].text.as_str() {
                            "(" | "[" => paren += 1,
                            ")" | "]" => paren -= 1,
                            "{" if paren == 0 => break,
                            ";" if paren == 0 => break,
                            _ => {}
                        }
                        j += 1;
                    }
                    if toks.get(j).is_some_and(|t| t.text == "{") {
                        let test = pending_test || in_test(&scopes) || all_test;
                        if (pending_test && !in_test(&scopes)) && !all_test {
                            test_opens.push(fn_line);
                            test_spans.push((fn_line, 0));
                        }
                        let idx = fns.len();
                        fns.push(FnScope {
                            qual: qual_of(&scopes, &base, &name),
                            name,
                            line: fn_line,
                            is_test: test,
                            body: (j + 1, j + 1), // end patched at pop
                        });
                        scopes.push(Scope {
                            kind: ScopeKind::Fn(idx),
                            is_test: test,
                        });
                    }
                    pending_test = false;
                    i = j + 1;
                }
                "{" => {
                    scopes.push(Scope {
                        kind: ScopeKind::Block,
                        is_test: in_test(&scopes),
                    });
                    i += 1;
                }
                "}" => {
                    if let Some(s) = scopes.pop() {
                        let was_test_root = s.is_test && !in_test(&scopes);
                        match s.kind {
                            ScopeKind::Fn(idx) => {
                                fns[idx].body.1 = i;
                                if was_test_root {
                                    if let Some(open) = test_opens.pop() {
                                        if let Some(span) = test_spans
                                            .iter_mut()
                                            .rev()
                                            .find(|sp| sp.0 == open && sp.1 == 0)
                                        {
                                            span.1 = t.line;
                                        }
                                    }
                                }
                            }
                            ScopeKind::Item(_) | ScopeKind::Block => {
                                if was_test_root && !matches!(s.kind, ScopeKind::Block) {
                                    if let Some(open) = test_opens.pop() {
                                        if let Some(span) = test_spans
                                            .iter_mut()
                                            .rev()
                                            .find(|sp| sp.0 == open && sp.1 == 0)
                                        {
                                            span.1 = t.line;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    pending_test = false;
                    i += 1;
                }
                ";" => {
                    pending_test = false;
                    i += 1;
                }
                _ => {
                    i += 1;
                }
            }
        }
        // Any span left open (unbalanced input) runs to EOF.
        let last_line = toks.last().map_or(0, |t| t.line);
        for sp in &mut test_spans {
            if sp.1 == 0 {
                sp.1 = last_line;
            }
        }
        FileStructure {
            toks,
            fns,
            test_spans,
            all_test,
        }
    }

    /// Is `line` (1-based) inside test context?
    pub fn in_test(&self, line: usize) -> bool {
        self.all_test || self.test_spans.iter().any(|&(a, b)| a <= line && line <= b)
    }

    /// Extract call references from a token range (typically an fn body).
    ///
    /// A call is an identifier followed by `(` (with optional turbofish),
    /// excluding `fn` definitions, keywords, and macro names; the path
    /// captures leading `Seg::` segments so `Type::method` resolves more
    /// precisely than a bare name.
    pub fn calls_in(&self, range: (usize, usize)) -> Vec<Call> {
        const KEYWORDS: &[&str] = &[
            "if", "while", "for", "match", "return", "loop", "in", "as", "move", "else", "fn",
            "let", "mut", "ref", "box", "await", "unsafe",
        ];
        let (start, end) = range;
        let mut out = Vec::new();
        let mut j = start;
        while j < end.min(self.toks.len()) {
            let t = &self.toks[j];
            if !t.is_ident() || KEYWORDS.contains(&t.text.as_str()) {
                j += 1;
                continue;
            }
            // Macro invocation `name!(…)` — not a call edge.
            if self.toks.get(j + 1).is_some_and(|n| n.text == "!") {
                j += 2;
                continue;
            }
            // Definition `fn name(`.
            if j > 0 && self.toks[j - 1].text == "fn" {
                j += 1;
                continue;
            }
            // Find the paren, skipping one turbofish `::<…>`.
            let mut k = j + 1;
            if self.toks.get(k).is_some_and(|n| n.text == ":")
                && self.toks.get(k + 1).is_some_and(|n| n.text == ":")
                && self.toks.get(k + 2).is_some_and(|n| n.text == "<")
            {
                let mut angle = 0i32;
                let mut m = k + 2;
                while m < self.toks.len() {
                    match self.toks[m].text.as_str() {
                        "<" => angle += 1,
                        ">" => {
                            angle -= 1;
                            if angle == 0 {
                                break;
                            }
                        }
                        ";" | "{" => break,
                        _ => {}
                    }
                    m += 1;
                }
                k = m + 1;
            }
            if self.toks.get(k).is_some_and(|n| n.text == "(") {
                // Walk back over `Seg::` prefixes.
                let mut path = vec![t.text.clone()];
                let mut b = j;
                while b >= 3
                    && self.toks[b - 1].text == ":"
                    && self.toks[b - 2].text == ":"
                    && self.toks[b - 3].is_ident()
                {
                    path.insert(0, self.toks[b - 3].text.clone());
                    b -= 3;
                }
                out.push(Call { path, line: t.line });
            }
            j += 1;
        }
        out
    }

    /// Find every occurrence of `ident` followed by the given `next`
    /// punctuation (e.g. `recv` + `(`), returning (token index, line).
    pub fn ident_followed_by(&self, ident: &str, next: &str) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (j, t) in self.toks.iter().enumerate() {
            if t.text == ident && self.toks.get(j + 1).is_some_and(|n| n.text == next) {
                out.push((j, t.line));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean;

    fn parse(path: &str, src: &str) -> FileStructure {
        FileStructure::parse(path, &clean::clean(src))
    }

    #[test]
    fn module_paths_from_file_paths() {
        assert_eq!(
            module_path("crates/evo-core/src/engine.rs"),
            vec!["evo_core", "engine"]
        );
        assert_eq!(module_path("crates/ipd/src/lib.rs"), vec!["ipd"]);
        assert_eq!(module_path("src/bin/cli.rs"), vec!["bin", "cli"]);
    }

    #[test]
    fn fn_scopes_get_qualified_names() {
        let fs = parse(
            "crates/evo-core/src/engine.rs",
            "pub fn plan(x: u64) -> u64 { helper(x) }\n\
             fn helper(x: u64) -> u64 { x }\n\
             impl Engine { fn step(&self) {} }\n\
             mod inner { pub fn deep() {} }\n",
        );
        let quals: Vec<&str> = fs.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            vec![
                "evo_core::engine::plan",
                "evo_core::engine::helper",
                "evo_core::engine::Engine::step",
                "evo_core::engine::inner::deep"
            ]
        );
        assert_eq!(fs.fns[0].line, 1);
    }

    #[test]
    fn impl_trait_for_type_uses_the_type_name() {
        let fs = parse(
            "crates/cluster/src/dist.rs",
            "impl fmt::Display for DistError { fn fmt(&self) {} }\n\
             impl<T: Clone> Provider<T> for Remote<T> { fn provide(&self) {} }\n",
        );
        assert_eq!(fs.fns[0].qual, "cluster::dist::DistError::fmt");
        assert_eq!(fs.fns[1].qual, "cluster::dist::Remote::provide");
    }

    #[test]
    fn cfg_test_mods_and_test_fns_are_test_context() {
        let fs = parse(
            "crates/evo-core/src/x.rs",
            "pub fn live() {}\n\
             #[test]\n\
             fn pinned() { let a = 1; }\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 pub fn helper() {}\n\
                 #[test]\n\
                 fn t() {}\n\
             }\n\
             pub fn also_live() {}\n",
        );
        assert!(!fs.fns[0].is_test, "live");
        assert!(fs.fns[1].is_test, "#[test] fn");
        assert!(fs.fns[2].is_test, "helper inside cfg(test) mod");
        assert!(fs.fns[3].is_test, "test fn inside cfg(test) mod");
        assert!(!fs.fns[4].is_test, "after the mod closes");
        assert!(fs.in_test(7), "line inside the test mod");
        assert!(!fs.in_test(1), "top-level live fn");
        assert!(!fs.in_test(10), "line after the test mod");
    }

    #[test]
    fn cfg_not_test_is_not_test_context() {
        let fs = parse(
            "crates/evo-core/src/x.rs",
            "#[cfg(not(test))]\nfn shipped() {}\n",
        );
        assert!(!fs.fns[0].is_test);
    }

    #[test]
    fn test_paths_are_test_context_wholesale() {
        let fs = parse("crates/ipd/tests/proptests.rs", "pub fn helper() {}\n");
        assert!(fs.fns[0].is_test);
        assert!(fs.in_test(1));
        assert!(is_test_path("tests/determinism.rs"));
        assert!(!is_test_path("crates/ipd/src/tests.rs"));
    }

    #[test]
    fn calls_are_extracted_with_paths() {
        let fs = parse(
            "crates/evo-core/src/x.rs",
            "fn f(n: &N) {\n\
                 helper(1);\n\
                 n.method(2);\n\
                 Type::assoc(3);\n\
                 path::to::g(4);\n\
                 max::<u8>(5);\n\
                 not_a_call;\n\
                 println!(\"skip {}\", helper2(6));\n\
             }\n",
        );
        let calls = fs.calls_in(fs.fns[0].body);
        let names: Vec<String> = calls.iter().map(|c| c.path.join("::")).collect();
        assert!(names.contains(&"helper".to_string()), "{names:?}");
        assert!(names.contains(&"method".to_string()), "{names:?}");
        assert!(names.contains(&"Type::assoc".to_string()), "{names:?}");
        assert!(names.contains(&"path::to::g".to_string()), "{names:?}");
        assert!(names.contains(&"max".to_string()), "turbofish: {names:?}");
        // Calls inside macro args still produce edges; the macro name
        // itself does not.
        assert!(names.contains(&"helper2".to_string()), "{names:?}");
        assert!(!names.iter().any(|n| n == "println"), "{names:?}");
        assert!(!names.iter().any(|n| n == "not_a_call"), "{names:?}");
        let helper = calls.iter().find(|c| c.name() == "helper").unwrap();
        assert_eq!(helper.line, 2);
    }

    #[test]
    fn bodies_are_brace_matched_through_nested_blocks() {
        let fs = parse(
            "crates/evo-core/src/x.rs",
            "fn outer(x: u8) -> u8 {\n\
                 match x { 0 => inner(), _ => { loop { break; } 1 } }\n\
             }\n\
             fn after() { tail(); }\n",
        );
        assert_eq!(fs.fns.len(), 2);
        let outer_calls = fs.calls_in(fs.fns[0].body);
        assert!(outer_calls.iter().any(|c| c.name() == "inner"));
        assert!(!outer_calls.iter().any(|c| c.name() == "tail"));
        let after_calls = fs.calls_in(fs.fns[1].body);
        assert!(after_calls.iter().any(|c| c.name() == "tail"));
    }
}
