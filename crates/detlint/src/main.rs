//! CLI for the determinism lint: `detlint check` / `rules` / `explain`.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

#![forbid(unsafe_code)]

use detlint::{diag, rules, sarif};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
detlint — workspace determinism & concurrency static analysis

USAGE:
    detlint check [--root <dir>] [--format text|json|sarif] [--rules lexical|structural|all]
    detlint rules [--format text|json]
    detlint explain <rule>

COMMANDS:
    check    Walk crates/, src/, and tests/ and report contract violations
    rules    List the enforced rules
    explain  Print one rule's summary, rationale, and annotation grammar

OPTIONS:
    --root <dir>     Workspace root to scan (default: current directory)
    --format <fmt>   Output format: text (default), json, or sarif (check only)
    --rules <class>  Restrict check to lexical or structural rules (default: all)
";

enum Format {
    Text,
    Json,
    Sarif,
}

enum RuleClass {
    All,
    Lexical,
    Structural,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    if command == "explain" {
        return match args.get(1) {
            Some(slug) => explain(slug),
            None => {
                eprintln!("detlint: explain needs a rule slug\n{USAGE}");
                ExitCode::from(2)
            }
        };
    }
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut class = RuleClass::All;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("detlint: --root needs a value");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(v);
                i += 2;
            }
            "--format" => {
                format = match args.get(i + 1).map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        eprintln!("detlint: --format must be text, json, or sarif, got {other:?}");
                        return ExitCode::from(2);
                    }
                };
                i += 2;
            }
            "--rules" => {
                class = match args.get(i + 1).map(String::as_str) {
                    Some("all") => RuleClass::All,
                    Some("lexical") => RuleClass::Lexical,
                    Some("structural") => RuleClass::Structural,
                    other => {
                        eprintln!(
                            "detlint: --rules must be lexical, structural, or all, got {other:?}"
                        );
                        return ExitCode::from(2);
                    }
                };
                i += 2;
            }
            other => {
                eprintln!("detlint: unknown option {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match command.as_str() {
        "check" => check(&root, &format, &class),
        "rules" => {
            list_rules(&format);
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("detlint: unknown command {other}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(root: &std::path::Path, format: &Format, class: &RuleClass) -> ExitCode {
    let mut report = match detlint::check_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    // `bad-annotation` (a malformed suppression) belongs to both classes.
    report.diagnostics.retain(|d| match class {
        RuleClass::All => true,
        RuleClass::Lexical => rules::rule(&d.rule).is_none_or(|r| !r.is_structural()),
        RuleClass::Structural => rules::rule(&d.rule).is_none_or(rules::Rule::is_structural),
    });
    match format {
        Format::Json => println!("{}", report.to_json()),
        Format::Sarif => println!("{}", sarif::to_sarif(&report)),
        Format::Text => {
            for d in &report.diagnostics {
                println!("{}", d.render());
            }
            if report.is_clean() {
                let enforced = rules::REGISTRY
                    .iter()
                    .filter(|r| match class {
                        RuleClass::All => true,
                        RuleClass::Lexical => !r.is_structural(),
                        RuleClass::Structural => r.is_structural(),
                    })
                    .count();
                println!(
                    "detlint: OK — {} files clean under {} {}rules",
                    report.files_scanned,
                    enforced,
                    match class {
                        RuleClass::All => "",
                        RuleClass::Lexical => "lexical ",
                        RuleClass::Structural => "structural ",
                    }
                );
            } else {
                println!(
                    "detlint: {} violation(s) across {} files",
                    report.diagnostics.len(),
                    report.files_scanned
                );
            }
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn explain(slug: &str) -> ExitCode {
    let Some(r) = rules::rule(slug) else {
        eprintln!(
            "detlint: no rule named {slug} — known slugs: {}",
            rules::REGISTRY
                .iter()
                .map(|r| r.slug)
                .collect::<Vec<_>>()
                .join(", ")
        );
        return ExitCode::from(2);
    };
    println!("{} — {}", r.slug, r.summary);
    println!("  class: {}", if r.is_structural() { "structural" } else { "lexical" });
    println!("\n  why it breaks the contract:\n    {}", r.rationale);
    println!(
        "\n  suppressing a justified site:\n    \
         // detlint: allow({}, reason = \"...\")\n    \
         // detlint: allow-file({}, reason = \"...\")",
        r.slug, r.slug
    );
    println!("\n  full contract text: docs/STATIC_ANALYSIS.md");
    ExitCode::SUCCESS
}

fn list_rules(format: &Format) {
    match format {
        Format::Text => {
            for r in rules::REGISTRY {
                println!("{:<14} {}", r.slug, r.summary);
                println!("{:<14} why: {}", "", r.rationale);
            }
        }
        Format::Json | Format::Sarif => {
            let mut out = String::from("[");
            for (i, r) in rules::REGISTRY.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"slug\":{},\"summary\":{},\"rationale\":{},\"structural\":{}}}",
                    diag::json_string(r.slug),
                    diag::json_string(r.summary),
                    diag::json_string(r.rationale),
                    r.is_structural(),
                ));
            }
            out.push(']');
            println!("{out}");
        }
    }
}
