//! CLI for the determinism lint: `detlint check` / `detlint rules`.
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

#![forbid(unsafe_code)]

use detlint::{diag, rules};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
detlint — workspace determinism & concurrency static analysis

USAGE:
    detlint check [--root <dir>] [--format text|json]
    detlint rules [--format text|json]

COMMANDS:
    check    Walk crates/, src/, and tests/ and report contract violations
    rules    List the enforced rules

OPTIONS:
    --root <dir>     Workspace root to scan (default: current directory)
    --format <fmt>   Output format: text (default) or json
";

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let mut root = PathBuf::from(".");
    let mut format = Format::Text;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("detlint: --root needs a value");
                    return ExitCode::from(2);
                };
                root = PathBuf::from(v);
                i += 2;
            }
            "--format" => {
                format = match args.get(i + 1).map(String::as_str) {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    other => {
                        eprintln!("detlint: --format must be text or json, got {other:?}");
                        return ExitCode::from(2);
                    }
                };
                i += 2;
            }
            other => {
                eprintln!("detlint: unknown option {other}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    match command.as_str() {
        "check" => check(&root, &format),
        "rules" => {
            list_rules(&format);
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("detlint: unknown command {other}\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn check(root: &std::path::Path, format: &Format) -> ExitCode {
    let report = match detlint::check_workspace(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("detlint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Json => println!("{}", report.to_json()),
        Format::Text => {
            for d in &report.diagnostics {
                println!("{}", d.render());
            }
            if report.is_clean() {
                println!(
                    "detlint: OK — {} files clean under {} rules",
                    report.files_scanned,
                    rules::REGISTRY.len()
                );
            } else {
                println!(
                    "detlint: {} violation(s) across {} files",
                    report.diagnostics.len(),
                    report.files_scanned
                );
            }
        }
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn list_rules(format: &Format) {
    match format {
        Format::Text => {
            for r in rules::REGISTRY {
                println!("{:<14} {}", r.slug, r.summary);
                println!("{:<14} why: {}", "", r.rationale);
            }
        }
        Format::Json => {
            let mut out = String::from("[");
            for (i, r) in rules::REGISTRY.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"slug\":{},\"summary\":{},\"rationale\":{}}}",
                    diag::json_string(r.slug),
                    diag::json_string(r.summary),
                    diag::json_string(r.rationale),
                ));
            }
            out.push(']');
            println!("{out}");
        }
    }
}
