//! The structural contract rules: phase purity, RNG-domain ownership,
//! comm discipline, float ordering, and panic-path hygiene.
//!
//! Each rule here encodes a contract that previously lived only in prose
//! (docs/ENGINE_CORE.md, docs/FAULT_TOLERANCE.md) or in a postmortem:
//!
//! - **phase-purity** — `engine::plan` and `engine::commit` must stay
//!   RNG-free (plan delegates every draw to the sanctioned
//!   `NatureAgent::schedule`); a constructor reachable through the call
//!   graph is a contract break even if the roots themselves look clean.
//! - **rng-domain** — every `Domain` variant has exactly one owning
//!   module; a `Domain::Faults` draw outside `cluster::faults` silently
//!   forks the fault schedule between backends.
//! - **comm-discipline** — a bare `recv` (no deadline, or wildcard
//!   source) is the PR 5 deadlock class: a dead peer turns it into a
//!   hang. All receives go through the deadline-bound wrappers or carry
//!   an annotation explaining why the bare primitive is safe.
//! - **float-order** — f64 accumulation (`sum`/`fold`) over
//!   `HashMap`/`HashSet` iteration is the PR 2 nondeterminism bug shape:
//!   the order, and therefore the rounding, differs per process.
//! - **panic-path** — `unwrap`/`expect`/`panic!` in the distributed and
//!   engine hot paths either carries a reasoned annotation or becomes a
//!   typed `DistError`; an unexplained panic in a rank thread is a
//!   cluster-wide hang.
//!
//! All checks run over [`crate::structure::FileStructure`] — cleaned
//! tokens with fn scopes and test spans — so string/comment text and test
//! code never fire.

use crate::diag::Diagnostic;
use crate::structure::{Call, FileStructure};

/// The five structural checks, dispatched from the rules registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Check {
    /// No RNG constructor reachable from `engine::plan`/`engine::commit`.
    PhasePurity,
    /// Each `Domain::X` draw confined to its owning module.
    RngDomain,
    /// No deadline-free or wildcard-source `recv` in cluster code.
    CommDiscipline,
    /// No `sum`/`fold` over `HashMap`/`HashSet` iterators.
    FloatOrder,
    /// No unannotated `unwrap`/`expect`/`panic!` in hot paths.
    PanicPath,
}

/// Call-graph roots for phase purity: a qualified-name suffix plus the
/// callees a root may legitimately delegate RNG work to (descent stops
/// there; the sanctioned module owns its own discipline).
#[derive(Debug)]
pub struct PurityRoot {
    /// Segment-aligned suffix of the fully-qualified fn name.
    pub suffix: &'static str,
    /// Callee names (last path segment) the root may call for RNG work.
    pub sanctioned: &'static [&'static str],
}

/// `plan` delegates all draws to `NatureAgent::schedule` (Nature id 0 /
/// Mutation id 0, per docs/ENGINE_CORE.md); `commit` is RNG-free, full
/// stop.
pub const PURITY_ROOTS: &[PurityRoot] = &[
    PurityRoot {
        suffix: "engine::plan",
        sanctioned: &["schedule"],
    },
    PurityRoot {
        suffix: "engine::commit",
        sanctioned: &[],
    },
    // The structured-population commit phases are RNG-free too: every
    // spatial/migration draw happens in the decide step
    // (`spatial::decide_cell`, `Archipelago::plan_migration`), so the
    // apply steps get no sanctioned delegates at all.
    PurityRoot {
        suffix: "SpatialPopulation::commit_update",
        sanctioned: &[],
    },
    PurityRoot {
        suffix: "Archipelago::commit_migration",
        sanctioned: &[],
    },
    // The fixation workload's absorption classifier inspects committed
    // assignments only — no draws, no delegates.
    PurityRoot {
        suffix: "fixation::commit_absorption",
        sanctioned: &[],
    },
];

/// Function names that construct an RNG when called.
pub const RNG_CONSTRUCTORS: &[&str] = &[
    "stream",
    "game_stream",
    "from_seed",
    "seed_from_u64",
    "from_entropy",
    "from_os_rng",
    "thread_rng",
    "StdRng",
    "ChaCha8Rng",
];

/// Ubiquitous method names never resolved by bare name: they are almost
/// always std types' methods, and following every workspace fn that
/// happens to share the name would drown the graph in false edges.
const COMMON_NAMES: &[&str] = &[
    "new", "default", "clone", "push", "pop", "insert", "get", "get_mut", "len", "is_empty",
    "iter", "iter_mut", "into_iter", "map", "filter", "collect", "from", "into", "as_ref",
    "as_mut", "as_str", "to_string", "to_vec", "extend", "contains", "contains_key", "remove",
    "take", "next", "sum", "fold", "min", "max", "entry", "or_insert", "drain", "sort",
    "sort_by", "sort_by_key", "sort_unstable", "clamp", "unwrap", "unwrap_or", "expect", "ok",
    "err", "with_capacity", "resize", "reserve", "rem_euclid", "wrapping_add", "saturating_sub",
];

/// Per-`Domain` owning modules (exact workspace-relative paths, or a
/// `/`-terminated directory prefix). Mirrors the RNG-stream-ownership
/// table in docs/ENGINE_CORE.md.
pub const DOMAIN_OWNERS: &[(&str, &[&str])] = &[
    (
        "Init",
        &[
            "crates/evo-core/src/rngstream.rs",
            "crates/evo-core/src/population.rs",
            "crates/evo-core/src/spatial.rs",
        ],
    ),
    (
        "GamePlay",
        &[
            "crates/evo-core/src/rngstream.rs",
            "crates/evo-core/src/fitness.rs",
            "crates/evo-core/src/spatial.rs",
        ],
    ),
    (
        "Nature",
        &["crates/evo-core/src/rngstream.rs", "crates/evo-core/src/nature.rs"],
    ),
    (
        "Mutation",
        &["crates/evo-core/src/rngstream.rs", "crates/evo-core/src/nature.rs"],
    ),
    ("Analysis", &["crates/evo-core/src/rngstream.rs", "crates/analysis/"]),
    (
        "Faults",
        &["crates/evo-core/src/rngstream.rs", "crates/cluster/src/faults.rs"],
    ),
    (
        "Graph",
        &[
            "crates/evo-core/src/rngstream.rs",
            "crates/evo-core/src/spatial.rs",
            "crates/evo-core/src/islands.rs",
        ],
    ),
    (
        "Fixation",
        &["crates/evo-core/src/rngstream.rs", "crates/evo-core/src/fixation.rs"],
    ),
];

/// Files whose panic paths must be typed or reason-annotated: the
/// distributed protocol layer and the engine transition hot path.
pub const PANIC_SCOPE: &[&str] = &[
    "crates/cluster/src/dist.rs",
    "crates/cluster/src/dist/fixation.rs",
    "crates/cluster/src/dist/graph.rs",
    "crates/cluster/src/collective.rs",
    "crates/cluster/src/comm.rs",
    "crates/evo-core/src/engine.rs",
    "crates/evo-core/src/fitness.rs",
];

/// Receive method names that must be deadline-bound or annotated.
const RECV_NAMES: &[&str] = &["recv", "recv_any"];

/// Does `check` inspect `rel_path` at all (before test-span filtering)?
pub fn in_scope(check: Check, rel_path: &str) -> bool {
    match check {
        Check::PhasePurity | Check::RngDomain => crate::rules::ENGINE_CRATES
            .iter()
            .any(|p| rel_path.starts_with(p)),
        Check::CommDiscipline => rel_path.starts_with("crates/cluster/"),
        Check::FloatOrder => !rel_path.starts_with("crates/detlint/"),
        Check::PanicPath => PANIC_SCOPE.contains(&rel_path),
    }
}

fn diagnostic(slug: &str, rel_path: &str, line: usize, message: String) -> Diagnostic {
    Diagnostic {
        rule: slug.into(),
        path: rel_path.into(),
        line,
        message,
    }
}

/// Run every file-local structural check that applies to `rel_path`.
pub fn check_file(rel_path: &str, fs: &FileStructure) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if in_scope(Check::RngDomain, rel_path) {
        rng_domain(rel_path, fs, &mut out);
    }
    if in_scope(Check::CommDiscipline, rel_path) {
        comm_discipline(rel_path, fs, &mut out);
    }
    if in_scope(Check::FloatOrder, rel_path) {
        float_order(rel_path, fs, &mut out);
    }
    if in_scope(Check::PanicPath, rel_path) {
        panic_path(rel_path, fs, &mut out);
    }
    out
}

/// rng-domain: `Domain::X` tokens outside the variant's owning module.
fn rng_domain(rel_path: &str, fs: &FileStructure, out: &mut Vec<Diagnostic>) {
    for (j, line) in fs.ident_followed_by("Domain", ":") {
        if fs.in_test(line) {
            continue;
        }
        if fs.toks.get(j + 2).is_none_or(|c| c.text != ":") {
            continue;
        }
        let Some(variant) = fs.toks.get(j + 3).filter(|t| t.is_ident()) else {
            continue;
        };
        let Some((_, owners)) = DOMAIN_OWNERS.iter().find(|(v, _)| *v == variant.text) else {
            continue; // unknown variant: not this rule's business
        };
        let owned = owners
            .iter()
            .any(|o| rel_path == *o || (o.ends_with('/') && rel_path.starts_with(o)));
        if !owned {
            out.push(diagnostic(
                "rng-domain",
                rel_path,
                variant.line,
                format!(
                    "`Domain::{}` drawn outside its owning module ({}); route the draw through \
                     the owner or annotate with `// detlint: allow(rng-domain, reason = \"...\")`",
                    variant.text,
                    owners.join(", ")
                ),
            ));
        }
    }
}

/// comm-discipline: `.recv(`/`.recv_any(` call sites in cluster code.
fn comm_discipline(rel_path: &str, fs: &FileStructure, out: &mut Vec<Diagnostic>) {
    for name in RECV_NAMES {
        for (j, line) in fs.ident_followed_by(name, "(") {
            if fs.in_test(line) {
                continue;
            }
            // Only call sites: preceded by `.` or a `::` path. The `fn
            // recv(...)` definitions themselves are the primitive.
            let is_call = j > 0
                && (fs.toks[j - 1].text == "."
                    || (fs.toks[j - 1].text == ":"
                        && fs.toks.get(j.wrapping_sub(2)).is_some_and(|t| t.text == ":")));
            if !is_call {
                continue;
            }
            let wildcard = *name == "recv_any"
                || fs.toks.get(j + 2).is_some_and(|t| t.text == "None");
            let shape = if wildcard {
                "wildcard-source receive"
            } else {
                "deadline-free receive"
            };
            out.push(diagnostic(
                "comm-discipline",
                rel_path,
                line,
                format!(
                    "{shape} `{name}(..)` — a dead peer turns this into a hang (the PR 5 gather \
                     deadlock); use recv_deadline/recv_timeout, or annotate the sanctioned \
                     primitive with `// detlint: allow(comm-discipline, reason = \"...\")`"
                ),
            ));
        }
    }
}

/// float-order: `x.values()/keys()/iter()` chains ending in `sum`/`fold`
/// where `x` was bound with a `HashMap`/`HashSet` type ascription.
fn float_order(rel_path: &str, fs: &FileStructure, out: &mut Vec<Diagnostic>) {
    // Pass 1: names bound to unordered maps — `ident :` with a
    // HashMap/HashSet token before the next statement/param boundary.
    let mut hash_idents: Vec<String> = Vec::new();
    for (j, t) in fs.toks.iter().enumerate() {
        if t.text != "HashMap" && t.text != "HashSet" {
            continue;
        }
        // Walk back to the nearest binding boundary looking for `name :`.
        let mut b = j;
        while b >= 2 {
            let prev = &fs.toks[b - 1];
            if matches!(prev.text.as_str(), ";" | "," | "(" | "{" | "}" | "=") {
                break;
            }
            if prev.text == ":"
                && fs.toks[b - 2].is_ident()
                && fs.toks.get(b.wrapping_sub(3)).is_none_or(|t| t.text != ":")
            {
                let name = fs.toks[b - 2].text.clone();
                if !hash_idents.contains(&name) {
                    hash_idents.push(name);
                }
                break;
            }
            b -= 1;
        }
        // `= HashMap::new()` with inferred type: bind the `let` name.
        if b >= 2 && fs.toks[b - 1].text == "=" {
            let mut k = b - 1;
            while k >= 2 {
                if fs.toks[k - 1].text == "let" {
                    let n = if fs.toks[k].text == "mut" { k + 1 } else { k };
                    if let Some(t) = fs.toks.get(n).filter(|t| t.is_ident()) {
                        if !hash_idents.contains(&t.text) {
                            hash_idents.push(t.text.clone());
                        }
                    }
                    break;
                }
                if matches!(fs.toks[k - 1].text.as_str(), ";" | "{" | "}") {
                    break;
                }
                k -= 1;
            }
        }
    }
    if hash_idents.is_empty() {
        return;
    }
    // Pass 2: `name . (values|keys|iter) ( )` followed by `.sum(`/`.fold(`
    // before the statement ends.
    for (j, t) in fs.toks.iter().enumerate() {
        if !hash_idents.contains(&t.text) {
            continue;
        }
        if fs.toks.get(j + 1).is_none_or(|n| n.text != ".") {
            continue;
        }
        let Some(iter_tok) = fs
            .toks
            .get(j + 2)
            .filter(|n| matches!(n.text.as_str(), "values" | "keys" | "iter"))
        else {
            continue;
        };
        if fs.toks.get(j + 3).is_none_or(|n| n.text != "(") {
            continue;
        }
        // Scan the rest of the statement for an accumulating terminal.
        let mut k = j + 4;
        let mut paren = 1i32;
        while k < fs.toks.len() && paren > 0 {
            match fs.toks[k].text.as_str() {
                "(" => paren += 1,
                ")" => paren -= 1,
                _ => {}
            }
            k += 1;
        }
        while k < fs.toks.len() {
            match fs.toks[k].text.as_str() {
                ";" | "{" | "}" => break,
                "sum" | "fold" | "product"
                    if fs.toks[k - 1].text == "."
                        && !fs.in_test(fs.toks[k].line) =>
                {
                    out.push(diagnostic(
                        "float-order",
                        rel_path,
                        fs.toks[k].line,
                        format!(
                            "`.{}()` accumulates over `{}.{}()` — HashMap/HashSet iteration \
                             order is per-process random, so the rounding (and any tie-break) \
                             differs run to run; iterate a BTreeMap or sort first",
                            fs.toks[k].text, t.text, iter_tok.text
                        ),
                    ));
                    break;
                }
                _ => {}
            }
            k += 1;
        }
    }
}

/// panic-path: `.unwrap(` / `.expect(` / `panic!` / `unreachable!` /
/// `todo!` / `unimplemented!` in the hot-path files.
fn panic_path(rel_path: &str, fs: &FileStructure, out: &mut Vec<Diagnostic>) {
    for name in ["unwrap", "expect"] {
        for (j, line) in fs.ident_followed_by(name, "(") {
            if fs.in_test(line) {
                continue;
            }
            if j == 0 || fs.toks[j - 1].text != "." {
                continue;
            }
            out.push(diagnostic(
                "panic-path",
                rel_path,
                line,
                format!(
                    "`.{name}()` in a distributed/engine hot path — an unexplained panic here \
                     takes down a rank and hangs its peers; return a typed error (DistError) or \
                     annotate the invariant with `// detlint: allow(panic-path, reason = \"...\")`"
                ),
            ));
        }
    }
    for name in ["panic", "unreachable", "todo", "unimplemented"] {
        for (_, line) in fs.ident_followed_by(name, "!") {
            if fs.in_test(line) {
                continue;
            }
            out.push(diagnostic(
                "panic-path",
                rel_path,
                line,
                format!(
                    "`{name}!` in a distributed/engine hot path — make the failure a typed \
                     error or annotate the invariant with \
                     `// detlint: allow(panic-path, reason = \"...\")`"
                ),
            ));
        }
    }
    out.sort_by_key(|d| d.line);
}

/// A parsed file plus its path, as the workspace-level pass consumes it.
#[derive(Debug)]
pub struct ParsedFile {
    /// Workspace-relative `/`-separated path.
    pub rel_path: String,
    /// Parsed structure.
    pub structure: FileStructure,
}

/// phase-purity: breadth-first reachability from each [`PURITY_ROOTS`]
/// entry to any [`RNG_CONSTRUCTORS`] call, across the whole workspace.
///
/// Resolution is name-based: qualified calls (`Type::method`) must match a
/// segment-aligned suffix of a workspace fn's qualified name; bare calls
/// resolve by name unless the name is on the `COMMON_NAMES` list. Both
/// choices fail toward missing edges, never toward inventing them from
/// std methods.
pub fn phase_purity(files: &[ParsedFile]) -> Vec<Diagnostic> {
    // Index: fn name → (file idx, fn idx).
    let mut index: std::collections::BTreeMap<&str, Vec<(usize, usize)>> =
        std::collections::BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        for (gi, g) in f.structure.fns.iter().enumerate() {
            index.entry(g.name.as_str()).or_default().push((fi, gi));
        }
    }
    let suffix_matches = |qual: &str, path: &[String]| {
        let suffix = path.join("::");
        qual == suffix || qual.ends_with(&format!("::{suffix}"))
    };
    let mut out = Vec::new();
    for root in PURITY_ROOTS {
        let roots: Vec<(usize, usize)> = files
            .iter()
            .enumerate()
            .flat_map(|(fi, f)| {
                f.structure
                    .fns
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| {
                        !g.is_test
                            && (g.qual == root.suffix
                                || g.qual.ends_with(&format!("::{}", root.suffix)))
                    })
                    .map(move |(gi, _)| (fi, gi))
            })
            .collect();
        for &(rfi, rgi) in &roots {
            let mut visited = std::collections::BTreeSet::new();
            let root_qual = files[rfi].structure.fns[rgi].qual.clone();
            let mut queue: Vec<((usize, usize), Vec<String>)> =
                vec![((rfi, rgi), vec![root_qual.clone()])];
            while let Some(((fi, gi), chain)) = queue.pop() {
                if !visited.insert((fi, gi)) {
                    continue;
                }
                let f = &files[fi];
                let g = &f.structure.fns[gi];
                let calls: Vec<Call> = f.structure.calls_in(g.body);
                for call in &calls {
                    let name = call.name();
                    if root.sanctioned.contains(&name) {
                        continue;
                    }
                    if RNG_CONSTRUCTORS.contains(&name) {
                        out.push(diagnostic(
                            "phase-purity",
                            &f.rel_path,
                            call.line,
                            format!(
                                "RNG constructor `{}` is reachable from `{}` (chain: {}) — plan \
                                 draws only via NatureAgent::schedule and commit is RNG-free \
                                 (docs/ENGINE_CORE.md); move the draw into the sanctioned phase",
                                name,
                                root_qual,
                                chain
                                    .iter()
                                    .map(String::as_str)
                                    .chain(std::iter::once(name))
                                    .collect::<Vec<_>>()
                                    .join(" -> ")
                            ),
                        ));
                        continue;
                    }
                    if call.path.len() == 1 && COMMON_NAMES.contains(&name) {
                        continue;
                    }
                    if let Some(cands) = index.get(name) {
                        for &(cfi, cgi) in cands {
                            let cand = &files[cfi].structure.fns[cgi];
                            if cand.is_test {
                                continue;
                            }
                            if call.path.len() > 1 && !suffix_matches(&cand.qual, &call.path) {
                                continue;
                            }
                            let mut next_chain = chain.clone();
                            next_chain.push(cand.qual.clone());
                            queue.push(((cfi, cgi), next_chain));
                        }
                    }
                }
            }
        }
    }
    out
}
