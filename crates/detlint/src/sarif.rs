//! SARIF 2.1.0 output, for CI diff annotation and artifact upload.
//!
//! Hand-rolled (the tool is dependency-free): one `run`, the rule
//! registry mirrored into `tool.driver.rules` so viewers can show the
//! full rationale, and one `result` per diagnostic with a physical
//! location. The subset used here is stable across SARIF consumers
//! (GitHub code scanning, VS Code SARIF viewer).

use crate::diag::{json_string, Report};
use crate::rules;

/// Render `report` as a SARIF 2.1.0 log.
pub fn to_sarif(report: &Report) -> String {
    let mut out = String::from(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
         \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
         \"name\":\"detlint\",\"informationUri\":\"docs/STATIC_ANALYSIS.md\",\"rules\":[",
    );
    for (i, r) in rules::REGISTRY.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"id\":{},\"shortDescription\":{{\"text\":{}}},\
             \"fullDescription\":{{\"text\":{}}}}}",
            json_string(r.slug),
            json_string(r.summary),
            json_string(r.rationale),
        ));
    }
    // The reserved slug for malformed annotations is a rule too, as far
    // as SARIF consumers are concerned.
    out.push_str(&format!(
        ",{{\"id\":{},\"shortDescription\":{{\"text\":\
         {}}}}}",
        json_string(rules::BAD_ANNOTATION),
        json_string("malformed or unknown detlint allow annotation"),
    ));
    out.push_str("]}},\"results\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"ruleId\":{},\"level\":\"error\",\"message\":{{\"text\":{}}},\
             \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
             {{\"uri\":{}}},\"region\":{{\"startLine\":{}}}}}}}]}}",
            json_string(&d.rule),
            json_string(&d.message),
            json_string(&d.path),
            d.line,
        ));
    }
    out.push_str("]}]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    #[test]
    fn sarif_log_carries_rules_and_results() {
        let report = Report {
            files_scanned: 1,
            diagnostics: vec![Diagnostic {
                rule: "phase-purity".into(),
                path: "crates/evo-core/src/engine.rs".into(),
                line: 12,
                message: "RNG \"reachable\"".into(),
            }],
        };
        let log = to_sarif(&report);
        assert!(log.contains("\"version\":\"2.1.0\""), "{log}");
        assert!(log.contains("\"ruleId\":\"phase-purity\""), "{log}");
        assert!(log.contains("\"startLine\":12"), "{log}");
        assert!(log.contains("RNG \\\"reachable\\\""), "escaped: {log}");
        // Every registered rule (and the reserved slug) is declared.
        for r in rules::REGISTRY {
            assert!(log.contains(&format!("\"id\":\"{}\"", r.slug)), "{}", r.slug);
        }
        assert!(log.contains("\"id\":\"bad-annotation\""), "{log}");
    }

    #[test]
    fn empty_report_is_valid_sarif_with_no_results() {
        let log = to_sarif(&Report::default());
        assert!(log.ends_with("\"results\":[]}]}"), "{log}");
    }
}
