//! `detlint` — the workspace determinism & concurrency static-analysis
//! pass.
//!
//! The engine's headline guarantee (documented in `docs/OBSERVABILITY.md`
//! and pinned by `tests/determinism.rs`) is that a run is **bit-identical**
//! for a given seed at any thread count, in any execution mode. That
//! guarantee is easy to break silently: one `HashMap` iteration feeding a
//! float sum, one `thread_rng()` call, one relaxed atomic in simulation
//! logic, and results differ run to run with every test still green.
//!
//! `detlint` walks every `.rs` file under `crates/`, `src/`, and `tests/`
//! and enforces the contract *statically* (see [`rules::REGISTRY`]):
//!
//! - `hash-iter` — no `HashMap`/`HashSet` in the engine crates;
//! - `ambient-rng` — no `thread_rng`/`rand::random` outside obs/bench/CLI;
//! - `wall-clock` — no `SystemTime::now`/`Instant::now` outside the same;
//! - `env-read` — no `std::env` reads outside the same;
//! - `atomics` — atomics and memory orderings confined to `crates/obs`;
//! - `forbid-unsafe` — `#![forbid(unsafe_code)]` in every crate root.
//!
//! Sites that are provably harmless carry an annotation with a mandatory
//! reason (see [`annot`]):
//!
//! ```text
//! // detlint: allow(hash-iter, reason = "lookup-only; never iterated")
//! ```
//!
//! Run it as `cargo run -p detlint --release -- check` (wired into
//! `scripts/verify.sh`); `--format json` emits the machine-readable report.
//! `docs/STATIC_ANALYSIS.md` documents every rule and the annotation
//! grammar.

#![forbid(unsafe_code)]

pub mod annot;
pub mod clean;
pub mod contracts;
pub mod diag;
pub mod paths;
pub mod rules;
pub mod sarif;
pub mod structure;

pub use diag::{Diagnostic, Report};

use annot::{Allow, AllowScope};
use rules::{Rule, RuleKind};
use std::path::Path;

/// One analyzed file: parsed structure plus its allow tables, so both the
/// per-file passes and the workspace-level call-graph pass can filter
/// diagnostics through the same annotations.
struct Analyzed {
    rel_path: String,
    structure: structure::FileStructure,
    file_allows: Vec<Allow>,
    line_allows: Vec<Vec<Allow>>,
}

impl Analyzed {
    /// Is `slug` allowed at 1-based `line`?
    fn allowed(&self, slug: &str, line: usize) -> bool {
        self.file_allows.iter().any(|a| a.rule == slug)
            || self
                .line_allows
                .get(line.saturating_sub(1))
                .is_some_and(|l| l.iter().any(|a| a.rule == slug))
    }

    /// Drop diagnostics covered by allows (`bad-annotation` never is).
    fn filter(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter(|d| d.rule == rules::BAD_ANNOTATION || !self.allowed(&d.rule, d.line))
            .collect()
    }
}

/// Lex + parse one file: annotation tables, annotation diagnostics, and
/// every per-file rule (lexical and local-structural), unfiltered.
fn analyze(rel_path: &str, source: &str) -> (Analyzed, Vec<Diagnostic>) {
    let lines = clean::clean(source);
    let mut diags = Vec::new();

    // Gather annotations: per-line effective allows (trailing, or carried
    // from comment-only lines above) and file-wide allows.
    let mut file_allows: Vec<Allow> = Vec::new();
    let mut line_allows: Vec<Vec<Allow>> = vec![Vec::new(); lines.len()];
    let mut pending: Vec<Allow> = Vec::new();
    for (i, line) in lines.iter().enumerate() {
        let (allows, bad) = annot::parse(&line.comment);
        for b in bad {
            diags.push(Diagnostic {
                rule: rules::BAD_ANNOTATION.into(),
                path: rel_path.into(),
                line: i + 1,
                message: b.problem,
            });
        }
        let (file_scope, line_scope): (Vec<Allow>, Vec<Allow>) =
            allows.into_iter().partition(|a| a.scope == AllowScope::File);
        for a in file_scope.iter().chain(line_scope.iter()) {
            if rules::rule(&a.rule).is_none() {
                diags.push(unknown_rule(rel_path, i + 1, &a.rule));
            }
        }
        file_allows.extend(file_scope);
        if line.code.trim().is_empty() {
            // Comment-only or blank line: allows apply to the next code line.
            pending.extend(line_scope);
        } else {
            line_allows[i] = std::mem::take(&mut pending);
            line_allows[i].extend(line_scope);
        }
    }

    for rule in rules::REGISTRY {
        if !rule.applies(rel_path) {
            continue;
        }
        match rule.kind {
            RuleKind::TokenDeny { tokens, .. } => {
                for (i, line) in lines.iter().enumerate() {
                    for token in tokens {
                        if clean::find_token(&line.code, token).is_some() {
                            diags.push(token_diag(rule, rel_path, i + 1, token));
                            break; // one diagnostic per line per rule
                        }
                    }
                }
            }
            RuleKind::RequireForbidUnsafe => {
                let has = lines.iter().any(|l| {
                    l.code
                        .split_whitespace()
                        .collect::<String>()
                        .contains("#![forbid(unsafe_code)]")
                });
                if !has {
                    diags.push(Diagnostic {
                        rule: rule.slug.into(),
                        path: rel_path.into(),
                        line: 1,
                        message: format!(
                            "crate/binary root is missing `#![forbid(unsafe_code)]` — {}",
                            rule.summary
                        ),
                    });
                }
            }
            // Dispatched below over the parsed structure (phase-purity
            // needs the whole workspace and runs in check_sources).
            RuleKind::Structural(_) => {}
        }
    }

    let fs = structure::FileStructure::parse(rel_path, &lines);
    diags.extend(contracts::check_file(rel_path, &fs));

    let analyzed = Analyzed {
        rel_path: rel_path.to_string(),
        structure: fs,
        file_allows,
        line_allows,
    };
    (analyzed, diags)
}

/// Check one file's source against every applicable per-file rule.
///
/// `rel_path` is the workspace-relative `/`-separated path; scoping and
/// root detection key off it, so callers (and tests) can present any
/// content as living anywhere in the workspace. The workspace-level
/// `phase-purity` pass needs every file at once and therefore only runs
/// in [`check_sources`]/[`check_workspace`].
pub fn check_file(rel_path: &str, source: &str) -> Vec<Diagnostic> {
    let (analyzed, diags) = analyze(rel_path, source);
    let mut diags = analyzed.filter(diags);
    diags.sort_by(|a, b| a.line.cmp(&b.line).then_with(|| a.rule.cmp(&b.rule)));
    diags
}

/// Check a set of in-memory `(rel_path, source)` files as one workspace:
/// every per-file rule plus the cross-file `phase-purity` pass.
pub fn check_sources(files: &[(String, String)]) -> Report {
    let mut analyzed = Vec::with_capacity(files.len());
    let mut per_file_diags = Vec::with_capacity(files.len());
    for (rel, source) in files {
        let (a, d) = analyze(rel, source);
        analyzed.push(a);
        per_file_diags.push(d);
    }

    let parsed: Vec<contracts::ParsedFile> = analyzed
        .iter()
        .map(|a| contracts::ParsedFile {
            rel_path: a.rel_path.clone(),
            structure: a.structure.clone(),
        })
        .collect();
    for d in contracts::phase_purity(&parsed) {
        if let Some(i) = analyzed.iter().position(|a| a.rel_path == d.path) {
            per_file_diags[i].push(d);
        }
    }

    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for (a, diags) in analyzed.iter().zip(per_file_diags) {
        report.diagnostics.extend(a.filter(diags));
    }
    report.diagnostics.sort_by(|a, b| {
        a.path
            .cmp(&b.path)
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.rule.cmp(&b.rule))
    });
    report.diagnostics.dedup();
    report
}

fn token_diag(rule: &Rule, rel_path: &str, line: usize, token: &str) -> Diagnostic {
    Diagnostic {
        rule: rule.slug.into(),
        path: rel_path.into(),
        line,
        message: format!(
            "`{token}` violates the determinism contract here ({}); fix it or annotate with \
             `// detlint: allow({}, reason = \"...\")`",
            rule.summary, rule.slug
        ),
    }
}

fn unknown_rule(rel_path: &str, line: usize, slug: &str) -> Diagnostic {
    Diagnostic {
        rule: rules::BAD_ANNOTATION.into(),
        path: rel_path.into(),
        line,
        message: format!(
            "allow({slug}) names no registered rule — known slugs: {}",
            rules::REGISTRY
                .iter()
                .map(|r| r.slug)
                .collect::<Vec<_>>()
                .join(", ")
        ),
    }
}

/// Walk the workspace at `root` and check every `.rs` file under the scan
/// dirs ([`paths::SCAN_DIRS`]), including the cross-file passes.
pub fn check_workspace(root: &Path) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for rel in paths::collect_rs_files(root)? {
        let source = std::fs::read_to_string(root.join(&rel))?;
        files.push((paths::normalise(&rel), source));
    }
    Ok(check_sources(&files))
}

#[cfg(test)]
mod tests {
    use super::*;

    const ENGINE: &str = "crates/evo-core/src/x.rs";

    #[test]
    fn flags_hashmap_in_engine_crate() {
        let diags = check_file(ENGINE, "use std::collections::HashMap;\n");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, "hash-iter");
        assert_eq!(diags[0].line, 1);
    }

    #[test]
    fn ignores_hashmap_outside_engine_crates() {
        assert!(check_file("crates/obs/src/x.rs", "use std::collections::HashMap;\n")
            .is_empty());
        assert!(check_file("src/x.rs", "use std::collections::HashMap;\n").is_empty());
    }

    #[test]
    fn ignores_tokens_in_comments_and_strings() {
        let src = "// a HashMap would be wrong here\nlet s = \"HashMap\";\n";
        assert!(check_file(ENGINE, src).is_empty());
    }

    #[test]
    fn trailing_allow_exempts_its_line() {
        let src = "use std::collections::HashMap; // detlint: allow(hash-iter, reason = \"ok\")\n";
        assert!(check_file(ENGINE, src).is_empty());
    }

    #[test]
    fn preceding_allow_exempts_next_code_line() {
        let src = "// detlint: allow(hash-iter, reason = \"lookup-only\")\n\
                   use std::collections::HashMap;\n\
                   type M = HashMap<u32, u32>;\n";
        let diags = check_file(ENGINE, src);
        assert_eq!(diags.len(), 1, "allow covers one line, not the file: {diags:?}");
        assert_eq!(diags[0].line, 3);
    }

    #[test]
    fn file_allow_exempts_whole_file() {
        let src = "//! detlint: allow-file(atomics, reason = \"message substrate\")\n\
                   use std::sync::atomic::{AtomicU64, Ordering};\n\
                   fn f(x: &AtomicU64) -> u64 { x.load(Ordering::Acquire) }\n";
        assert!(check_file("crates/cluster/src/x.rs", src).is_empty());
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let src = "use std::collections::HashMap; // detlint: allow(hash-iter)\n";
        let diags = check_file(ENGINE, src);
        assert_eq!(diags.len(), 2, "{diags:?}"); // bad-annotation + hash-iter
        assert!(diags.iter().any(|d| d.rule == rules::BAD_ANNOTATION));
        assert!(diags.iter().any(|d| d.rule == "hash-iter"));
    }

    #[test]
    fn allow_for_unknown_rule_is_reported() {
        let src = "// detlint: allow(no-such-rule, reason = \"x\")\nfn f() {}\n";
        let diags = check_file(ENGINE, src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].rule, rules::BAD_ANNOTATION);
    }

    #[test]
    fn wall_clock_and_env_rules_fire_outside_exemptions() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n\
                   fn g() -> bool { std::env::var(\"X\").is_ok() }\n";
        let diags = check_file("crates/cluster/src/x.rs", src);
        assert_eq!(diags.len(), 2);
        assert_eq!(diags[0].rule, "wall-clock");
        assert_eq!(diags[1].rule, "env-read");
        // ... but not in the CLI or workspace tests (the CLI file is a
        // binary root, so it still needs the forbid-unsafe attribute).
        let cli = format!("#![forbid(unsafe_code)]\n{src}");
        assert!(check_file("src/bin/cli.rs", &cli).is_empty());
        assert!(check_file("tests/observability.rs", src).is_empty());
    }

    #[test]
    fn ambient_rng_fires_even_in_engine_tests() {
        let src = "let x: u8 = rand::random();\n";
        assert_eq!(check_file("crates/ipd/tests/t.rs", src).len(), 1);
        assert!(check_file("crates/bench/src/paper_data.rs", src).is_empty());
    }

    #[test]
    fn forbid_unsafe_required_in_roots_only() {
        let bare = "pub fn f() {}\n";
        let good = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert_eq!(check_file("crates/obs/src/lib.rs", bare).len(), 1);
        assert!(check_file("crates/obs/src/lib.rs", good).is_empty());
        // Non-root modules don't need the attribute.
        assert!(check_file("crates/obs/src/other.rs", bare).is_empty());
    }

    #[test]
    fn one_diagnostic_per_line_per_rule() {
        let src = "use std::collections::{HashMap, HashSet};\n";
        assert_eq!(check_file(ENGINE, src).len(), 1);
    }
}
