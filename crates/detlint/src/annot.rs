//! Allow-annotation parsing.
//!
//! A violation site can be exempted by an annotation in a comment:
//!
//! ```text
//! // detlint: allow(hash-iter, reason = "lookup-only; never iterated")
//! ```
//!
//! Placement:
//! - on the offending line (trailing comment), or
//! - on a comment-only line immediately above it (blank and further
//!   comment-only lines in between are fine), or
//! - as `allow-file(rule, reason = "…")`, exempting the whole file — for
//!   modules whose entire purpose is exempt (e.g. the virtual cluster's
//!   message substrate legitimately uses atomics throughout).
//!
//! The `reason` is mandatory and must be non-empty: an exemption without a
//! recorded justification is itself a violation (`bad-annotation`).

/// Where an allow applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllowScope {
    /// The annotated line (or the next code line, for comment-only lines).
    Line,
    /// The whole file.
    File,
}

/// One parsed allow annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    /// Scope of the exemption.
    pub scope: AllowScope,
    /// The rule slug being exempted.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
}

/// A malformed annotation, reported as a `bad-annotation` diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadAnnotation {
    /// What is wrong with it.
    pub problem: String,
}

/// Parse every allow annotation in one line's comment text.
pub fn parse(comment: &str) -> (Vec<Allow>, Vec<BadAnnotation>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("detlint:") {
        rest = rest[pos + "detlint:".len()..].trim_start();
        let scope = if let Some(r) = rest.strip_prefix("allow-file") {
            rest = r;
            AllowScope::File
        } else if let Some(r) = rest.strip_prefix("allow") {
            rest = r;
            AllowScope::Line
        } else {
            bad.push(BadAnnotation {
                problem: "expected `allow(...)` or `allow-file(...)` after `detlint:`".into(),
            });
            continue;
        };
        let Some(r) = rest.trim_start().strip_prefix('(') else {
            bad.push(BadAnnotation {
                problem: "expected `(` after `allow`".into(),
            });
            continue;
        };
        rest = r;
        // The rule slug runs to the first `,` or `)`; the reason is a
        // quoted string (which may itself contain parentheses), so the
        // closing `)` is only looked for after the closing quote.
        let Some(delim) = rest.find([',', ')']) else {
            bad.push(BadAnnotation {
                problem: "unclosed `allow(` annotation".into(),
            });
            break;
        };
        let rule = rest[..delim].trim().to_string();
        let had_comma = rest[delim..].starts_with(',');
        rest = &rest[delim + 1..];
        if rule.is_empty() {
            bad.push(BadAnnotation {
                problem: "empty rule slug in `allow(...)`".into(),
            });
            continue;
        }
        let missing_reason = || BadAnnotation {
            problem: format!(
                "allow({rule}) needs a non-empty `reason = \"...\"` — exemptions must \
                 record their justification"
            ),
        };
        if !had_comma {
            bad.push(missing_reason());
            continue;
        }
        let Some((reason, after)) = parse_reason(rest) else {
            bad.push(missing_reason());
            continue;
        };
        let Some(r) = after.trim_start().strip_prefix(')') else {
            bad.push(BadAnnotation {
                problem: format!("allow({rule}, ...) is missing its closing `)`"),
            });
            rest = after;
            continue;
        };
        rest = r;
        allows.push(Allow {
            scope,
            rule,
            reason,
        });
    }
    (allows, bad)
}

/// Parse `reason = "…"`, returning the quoted text (if non-empty) and the
/// remainder after the closing quote.
fn parse_reason(part: &str) -> Option<(String, &str)> {
    let part = part.trim_start().strip_prefix("reason")?.trim_start();
    let part = part.strip_prefix('=')?.trim_start();
    let part = part.strip_prefix('"')?;
    let end = part.find('"')?;
    let reason = part[..end].trim();
    (!reason.is_empty()).then(|| (reason.to_string(), &part[end + 1..]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_line_allow() {
        let (allows, bad) = parse(" detlint: allow(hash-iter, reason = \"lookup-only\")");
        assert!(bad.is_empty());
        assert_eq!(
            allows,
            vec![Allow {
                scope: AllowScope::Line,
                rule: "hash-iter".into(),
                reason: "lookup-only".into(),
            }]
        );
    }

    #[test]
    fn parses_file_allow() {
        let (allows, bad) = parse("detlint: allow-file(atomics, reason = \"substrate\")");
        assert!(bad.is_empty());
        assert_eq!(allows[0].scope, AllowScope::File);
    }

    #[test]
    fn reason_is_mandatory() {
        let (allows, bad) = parse("detlint: allow(hash-iter)");
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
        let (allows, bad) = parse("detlint: allow(hash-iter, reason = \"\")");
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn multiple_annotations_on_one_line() {
        let (allows, bad) = parse(
            "detlint: allow(atomics, reason = \"a\") detlint: allow(wall-clock, reason = \"b\")",
        );
        assert!(bad.is_empty());
        assert_eq!(allows.len(), 2);
    }

    #[test]
    fn reason_may_contain_parentheses() {
        let (allows, bad) =
            parse("detlint: allow(hash-iter, reason = \"point-lookup (get/insert); no iteration\")");
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(allows.len(), 1);
        assert_eq!(allows[0].reason, "point-lookup (get/insert); no iteration");
    }

    #[test]
    fn garbage_is_reported_not_ignored() {
        let (_, bad) = parse("detlint: disallow(hash-iter)");
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn plain_comments_parse_to_nothing() {
        let (allows, bad) = parse(" just a normal comment about HashMap");
        assert!(allows.is_empty());
        assert!(bad.is_empty());
    }
}
