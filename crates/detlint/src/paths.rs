//! Workspace traversal and path classification.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Top-level directories detlint walks, relative to the workspace root.
pub const SCAN_DIRS: &[&str] = &["crates", "src", "tests"];

/// Directory names skipped during the walk: build output and detlint's own
/// violation corpus (`crates/detlint/tests/fixtures/` deliberately contains
/// every kind of violation).
pub const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// Normalise a workspace-relative path to `/` separators.
pub fn normalise(rel: &Path) -> String {
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Is `rel_path` a crate or binary root that must carry
/// `#![forbid(unsafe_code)]`? Library roots (`src/lib.rs`,
/// `crates/*/src/lib.rs`), `main.rs` roots, and `src/bin/*.rs` targets.
pub fn is_target_root(rel_path: &str) -> bool {
    let parts: Vec<&str> = rel_path.split('/').collect();
    match parts.as_slice() {
        ["src", f] | ["crates", _, "src", f] => *f == "lib.rs" || *f == "main.rs",
        ["src", "bin", f] | ["crates", _, "src", "bin", f] => f.ends_with(".rs"),
        _ => false,
    }
}

/// Collect every `.rs` file under the scan dirs of `root`, as sorted
/// workspace-relative paths. Sorted order keeps diagnostics and JSON output
/// byte-stable across filesystems — detlint holds itself to the same
/// determinism bar it enforces.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut found = BTreeSet::new();
    for dir in SCAN_DIRS {
        let top = root.join(dir);
        if top.is_dir() {
            walk(&top, &mut found)?;
        }
    }
    Ok(found
        .into_iter()
        .map(|p| p.strip_prefix(root).expect("walked under root").to_path_buf())
        .collect())
}

fn walk(dir: &Path, out: &mut BTreeSet<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.insert(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_roots() {
        assert!(is_target_root("src/lib.rs"));
        assert!(is_target_root("crates/evo-core/src/lib.rs"));
        assert!(is_target_root("crates/detlint/src/main.rs"));
        assert!(is_target_root("src/bin/evogame-cli.rs"));
        assert!(is_target_root("crates/bench/src/bin/fig2.rs"));
        assert!(!is_target_root("crates/evo-core/src/fitness.rs"));
        assert!(!is_target_root("tests/cli.rs"));
        assert!(!is_target_root("crates/bench/benches/generation.rs"));
    }
}
