//! Tier-1 tests of the observability contract (docs/OBSERVABILITY.md):
//! the run manifest round-trips through serde, counters are monotone, and
//! — the load-bearing guarantee — enabling observability never changes
//! simulation results, at any thread count.
//!
//! Note on globals: the counters are process-global and these tests run in
//! parallel, so assertions use baseline deltas and `monotone_since`, never
//! exact process-wide values. `obs::set_enabled` is only ever set to
//! `true` here (the off-state run happens before that, inside the one test
//! that needs it) so tests cannot race each other's timing expectations.

use evogame::obs;
use evogame::prelude::*;

fn small_params(seed: u64) -> Params {
    Params {
        mem_steps: 1,
        num_ssets: 16,
        generations: 80,
        seed,
        game: GameConfig {
            rounds: 24,
            ..GameConfig::default()
        },
        ..Params::default()
    }
}

#[test]
fn two_generation_manifest_roundtrips_through_serde() {
    obs::set_enabled(true);
    let mut pop = Population::new(small_params(3)).unwrap();
    let t0 = std::time::Instant::now();
    pop.step();
    pop.step();
    let manifest = pop.manifest(t0.elapsed().as_secs_f64());

    assert_eq!(manifest.schema_version, obs::MANIFEST_SCHEMA_VERSION);
    assert_eq!(manifest.seed, 3);
    assert_eq!(manifest.generations, 2);
    assert!(manifest.threads >= 1);
    // Two generations under EveryGeneration evaluate 16x16 games each.
    assert!(manifest.counters.games_played >= 2 * 16 * 16);
    assert!(manifest.counters.rounds_simulated >= manifest.counters.games_played * 24);
    assert!(manifest.counters.rng_streams > 0);
    assert_eq!(manifest.per_generation_ns.len(), 2);
    assert_eq!(manifest.generation_ns_histogram.count(), 2);
    assert!(manifest
        .spans
        .iter()
        .any(|s| s.name == "population.generation" && s.count >= 2));

    let json = manifest.to_json();
    let back = obs::RunManifest::from_json(&json).expect("manifest parses back");
    assert_eq!(manifest, back);

    // The params travel verbatim: re-serialising the embedded params value
    // matches serialising the population's params directly.
    use serde::Serialize;
    assert_eq!(back.params, pop.params().to_value());
}

#[test]
fn counters_are_monotone_across_a_run() {
    let before = obs::counters().snapshot();
    let mut pop = Population::new(small_params(5)).unwrap();
    pop.run(40);
    let mid = obs::counters().snapshot();
    pop.run(40);
    let after = obs::counters().snapshot();

    assert!(mid.monotone_since(&before));
    assert!(after.monotone_since(&mid));
    let delta = after.delta_since(&before);
    assert!(delta.games_played >= 80 * 16 * 16, "games {delta:?}");
    assert!(delta.rng_streams > 0);
}

#[test]
fn observability_on_and_off_give_bit_identical_results() {
    // Off first (the flag may already be on from a concurrently running
    // test — that is fine: the assertion below holds either way, which is
    // exactly the guarantee under test).
    let mut off = Population::new(small_params(7)).unwrap();
    off.run_to_end();

    obs::set_enabled(true);
    let mut on = Population::new(small_params(7)).unwrap();
    on.run_to_end();

    assert_eq!(off.assignments(), on.assignments());
    assert_eq!(off.stats(), on.stats());
    assert_eq!(off.fitness(), on.fitness());
    assert_eq!(
        off.snapshot().features,
        on.snapshot().features,
        "observability must never perturb the simulation"
    );
}

#[test]
fn manifests_are_thread_count_invariant_in_results() {
    // The engine is schedule-invariant, and observability must not break
    // that: the same run at 1 and 4 worker threads produces identical
    // trajectories (only the manifest's `threads` field may differ).
    obs::set_enabled(true);
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let mut single = Population::new(small_params(11)).unwrap();
    single.run_to_end();
    let m1 = single.manifest(0.0);

    std::env::set_var("RAYON_NUM_THREADS", "4");
    let mut multi = Population::new(small_params(11)).unwrap();
    multi.run_to_end();
    let m4 = multi.manifest(0.0);
    std::env::remove_var("RAYON_NUM_THREADS");

    assert_eq!(single.assignments(), multi.assignments());
    assert_eq!(single.stats(), multi.stats());
    // Both runs open the same RNG streams and play the same games.
    assert_eq!(m1.counters.games_played, m4.counters.games_played);
    assert_eq!(m1.counters.rounds_simulated, m4.counters.rounds_simulated);
    assert_eq!(m1.counters.rng_streams, m4.counters.rng_streams);
    assert_eq!(m1.counters.fermi_updates, m4.counters.fermi_updates);
    assert_eq!(m1.counters.mutations, m4.counters.mutations);
    assert_eq!(m1.generations, m4.generations);
}

#[test]
fn distributed_run_reports_comm_counters_and_timings() {
    obs::set_enabled(true);
    let baseline = obs::counters().snapshot();
    let mut params = small_params(13);
    params.generations = 30;
    let out = evogame::cluster::dist::run_distributed(&evogame::cluster::dist::DistConfig::new(
        params,
        4,
        FitnessPolicy::EveryGeneration,
    ))
    .unwrap();
    let delta = obs::counters().snapshot().delta_since(&baseline);

    // Every generation broadcasts at least a schedule over 4 ranks.
    assert!(delta.comm_messages >= out.messages_sent);
    assert!(delta.comm_bytes > 0);
    assert!(delta.collective_ops >= 30);
    assert_eq!(out.generation_ns.len(), 30);
    // The Nature Agent's timings feed a manifest directly.
    use serde::Serialize;
    let manifest = obs::RunManifest::capture(
        out.stats.generations.to_value(),
        13,
        4,
        out.stats.generations,
        0.0,
        &baseline,
        &out.generation_ns,
    );
    assert_eq!(manifest.generation_ns_histogram.count(), 30);
    let back = obs::RunManifest::from_json(&manifest.to_json()).unwrap();
    assert_eq!(manifest, back);
}
