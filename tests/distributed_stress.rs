//! Randomised stress testing of the distributed engine: many random
//! configurations, each checked for exact trajectory equality against the
//! shared-memory reference — the repository's strongest end-to-end
//! correctness statement.

use evogame::cluster::dist::{run_distributed, DistConfig, DistError};
use evogame::cluster::faults::{FaultPlan, RankKill};
use evogame::engine::params::MutationKind;
use evogame::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_params(rng: &mut ChaCha8Rng) -> Params {
    let mem = rng.random_range(0..=2);
    let mut p = Params {
        mem_steps: mem,
        num_ssets: rng.random_range(4..=14),
        generations: rng.random_range(10..=50),
        seed: rng.random(),
        pc_rate: rng.random_range(0.0..=1.0),
        mutation_rate: rng.random_range(0.0..=0.5),
        beta: rng.random_range(0.0..=3.0),
        kind: if rng.random_bool(0.5) {
            StrategyKind::Pure
        } else {
            StrategyKind::Mixed
        },
        rule: match rng.random_range(0..3) {
            0 => UpdateRule::PairwiseComparison,
            1 => UpdateRule::Moran,
            _ => UpdateRule::ImitateBest,
        },
        teacher_must_be_fitter: rng.random_bool(0.7),
        ..Params::default()
    };
    p.game.rounds = rng.random_range(4..=32);
    p.game.noise = if rng.random_bool(0.5) { 0.0 } else { 0.05 };
    p.mutation_kind = if rng.random_bool(0.5) {
        MutationKind::Fresh
    } else {
        MutationKind::PointFlip {
            states: rng.random_range(1..=3),
        }
    };
    p
}

#[test]
fn random_configs_distributed_equals_shared_memory() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xD157);
    for case in 0..25 {
        let params = random_params(&mut rng);
        let ranks = rng.random_range(2..=7);
        let policy = if rng.random_bool(0.5) {
            FitnessPolicy::EveryGeneration
        } else {
            FitnessPolicy::OnDemand
        };
        let mut reference = Population::new(params.clone()).unwrap();
        // Match the distributed policy so the full RunStats — evaluation
        // and game counts included — must agree, not just the trajectory.
        reference.fitness_policy = policy;
        reference.run_to_end();
        let out = run_distributed(&DistConfig::new(params.clone(), ranks, policy)).unwrap();
        assert_eq!(
            out.assignments,
            reference.assignments(),
            "case {case}: {params:?} on {ranks} ranks ({policy:?}) diverged"
        );
        assert_eq!(
            out.stats,
            *reference.stats(),
            "case {case}: RunStats diverged on {ranks} ranks ({policy:?})"
        );
    }
}

#[test]
fn every_rule_and_policy_is_bit_identical_distributed() {
    // The full matrix the engine core unlocked: all three update rules ×
    // both fitness policies, distributed vs shared memory, compared on
    // serialised events (exact f64 bit patterns travel through the JSON:
    // equal strings ⇒ equal bits), assignments, and RunStats.
    for (r, rule) in [
        UpdateRule::PairwiseComparison,
        UpdateRule::Moran,
        UpdateRule::ImitateBest,
    ]
    .into_iter()
    .enumerate()
    {
        for policy in [FitnessPolicy::EveryGeneration, FitnessPolicy::OnDemand] {
            let mut params = Params {
                mem_steps: 1,
                num_ssets: 10,
                generations: 40,
                seed: 0xBEE5 + r as u64,
                mutation_rate: 0.2,
                rule,
                ..Params::default()
            };
            params.game.rounds = 12;
            let mut reference = Population::new(params.clone()).unwrap();
            reference.fitness_policy = policy;
            let ref_events: Vec<String> = (0..params.generations)
                .map(|_| serde_json::to_string(&reference.step().events).unwrap())
                .collect();
            let out = run_distributed(&DistConfig::new(params.clone(), 4, policy)).unwrap();
            let dist_events: Vec<String> = out
                .events
                .iter()
                .map(|e| serde_json::to_string(e).unwrap())
                .collect();
            assert_eq!(dist_events, ref_events, "{rule:?}/{policy:?}: event bits");
            assert_eq!(
                out.assignments,
                reference.assignments(),
                "{rule:?}/{policy:?}: assignments"
            );
            assert_eq!(out.stats, *reference.stats(), "{rule:?}/{policy:?}: RunStats");
        }
    }
}

#[test]
fn random_configs_all_exec_paths_agree() {
    // Sequential vs rayon vs dedup vs cycle kernel on random configs.
    let mut rng = ChaCha8Rng::seed_from_u64(0xACE5);
    for case in 0..20 {
        let mut params = random_params(&mut rng);
        // Dedup and the cycle kernel require deterministic games to engage
        // in half the cases; the rest exercise the stochastic fallbacks.
        if rng.random_bool(0.5) {
            params.kind = StrategyKind::Pure;
            params.game.noise = 0.0;
        }
        let build = |mode: ExecMode, dedup: bool, kernel: GameKernel| {
            let mut p = Population::new(params.clone()).unwrap();
            p.exec_mode = mode;
            p.dedup = dedup;
            p.kernel = kernel;
            p.run_to_end();
            p.assignments().to_vec()
        };
        let baseline = build(ExecMode::Sequential, false, GameKernel::Naive);
        assert_eq!(
            baseline,
            build(ExecMode::Rayon, false, GameKernel::Naive),
            "case {case}: rayon diverged"
        );
        assert_eq!(
            baseline,
            build(ExecMode::Sequential, true, GameKernel::Naive),
            "case {case}: dedup diverged"
        );
        assert_eq!(
            baseline,
            build(ExecMode::Rayon, false, GameKernel::Cycle),
            "case {case}: cycle kernel diverged"
        );
    }
}

#[test]
fn rank_kill_then_resume_is_bit_identical_for_every_rule() {
    // The fault-tolerance acceptance path, per update rule: inject a rank
    // kill, require a typed DegradedRun (no panic, no hang) carrying a
    // checkpoint, resume from it, and demand the stitched trajectory equal
    // the uninterrupted run bit for bit.
    for (r, rule) in [
        UpdateRule::PairwiseComparison,
        UpdateRule::Moran,
        UpdateRule::ImitateBest,
    ]
    .into_iter()
    .enumerate()
    {
        let mut params = Params {
            mem_steps: 1,
            num_ssets: 9,
            generations: 40,
            seed: 0xFA17 + r as u64,
            mutation_rate: 0.2,
            rule,
            ..Params::default()
        };
        params.game.rounds = 12;
        let clean = run_distributed(&DistConfig::new(
            params.clone(),
            4,
            FitnessPolicy::EveryGeneration,
        ))
        .unwrap();

        let mut faulty = DistConfig::new(params, 4, FitnessPolicy::EveryGeneration);
        faulty.faults.kills = vec![RankKill {
            rank: 2,
            generation: 15,
        }];
        let DistError::Degraded(d) = run_distributed(&faulty).unwrap_err() else {
            panic!("{rule:?}: expected a DegradedRun");
        };
        assert!(d.dead_ranks.contains(&2), "{rule:?}: {:?}", d.dead_ranks);
        let cp = d.checkpoint.expect("degraded run leaves a checkpoint");
        let resume_from = cp.generation as usize;

        let mut resumed_cfg =
            DistConfig::new(cp.params.clone(), 4, FitnessPolicy::EveryGeneration);
        resumed_cfg.resume = Some(cp);
        let resumed = run_distributed(&resumed_cfg).unwrap();
        assert_eq!(resumed.assignments, clean.assignments, "{rule:?}");
        assert_eq!(resumed.stats, clean.stats, "{rule:?}: full RunStats");
        assert_eq!(
            serde_json::to_string(&resumed.events).unwrap(),
            serde_json::to_string(&clean.events[resume_from..].to_vec()).unwrap(),
            "{rule:?}: event bits from generation {resume_from}"
        );
    }
}

#[test]
fn checkpoints_cross_backends_bit_identically() {
    // A checkpoint is backend-neutral: shared memory can resume what the
    // distributed engine snapshotted and vice versa, both matching the
    // uninterrupted shared-memory run.
    let mut params = Params {
        mem_steps: 1,
        num_ssets: 8,
        generations: 40,
        seed: 0xC0DE,
        mutation_rate: 0.2,
        ..Params::default()
    };
    params.game.rounds = 12;
    let mut straight = Population::new(params.clone()).unwrap();
    straight.run_to_end();

    // Shared → distributed.
    let mut first = Population::new(params.clone()).unwrap();
    first.run(20);
    let mut cfg = DistConfig::new(params.clone(), 4, FitnessPolicy::EveryGeneration);
    cfg.resume = Some(first.checkpoint());
    let dist = run_distributed(&cfg).unwrap();
    assert_eq!(
        dist.assignments,
        straight.assignments(),
        "shared checkpoint resumed distributed diverged"
    );

    // Distributed → shared.
    let mut cfg = DistConfig::new(params, 4, FitnessPolicy::EveryGeneration);
    cfg.checkpoint_every = Some(20);
    let out = run_distributed(&cfg).unwrap();
    let cp = out.checkpoint.expect("periodic checkpoint present");
    assert_eq!(cp.generation, 40, "latest multiple of 20 within 40");
    let resumed = Population::restore(cp).unwrap();
    assert_eq!(
        resumed.assignments(),
        straight.assignments(),
        "distributed checkpoint restored shared-memory diverged"
    );
}

#[test]
fn spatial_distributed_equals_shared_at_every_rank_count() {
    // The structured-population counterpart of the equality suite above:
    // the row-sharded lattice runner must reproduce the shared-memory
    // SpatialPopulation bit for bit — record stream, final grid, stats,
    // and state digest — at every rank count (docs/GRAPH.md).
    use evogame::engine::record::state_digest;
    for update in [SpatialUpdate::BestNeighbor, SpatialUpdate::Fermi { beta: 0.8 }] {
        let params = SpatialParams {
            width: 12,
            height: 12,
            generations: 30,
            seed: 0x57A7,
            update,
            ..SpatialParams::default()
        };
        let mut pop = SpatialPopulation::new(params.clone(), InitPattern::SingleDefector);
        let shared_records: Vec<String> = (0..params.generations)
            .map(|_| serde_json::to_string(&pop.step()).unwrap())
            .collect();
        let snap = pop.snapshot();
        let shared_digest = state_digest(&snap.assignments, &snap.features);
        for ranks in [2usize, 4] {
            let out = run_spatial_distributed(&SpatialDistConfig::new(
                params.clone(),
                InitPattern::SingleDefector,
                ranks,
            ))
            .unwrap();
            let dist_records: Vec<String> = out
                .records
                .iter()
                .map(|r| serde_json::to_string(r).unwrap())
                .collect();
            assert_eq!(
                dist_records, shared_records,
                "{update:?} on {ranks} ranks: record stream diverged"
            );
            assert_eq!(out.grid, pop.grid(), "{update:?} on {ranks} ranks: grid");
            assert_eq!(out.stats, *pop.stats(), "{update:?} on {ranks} ranks: stats");
            assert_eq!(
                state_digest(&out.grid, &out.features),
                shared_digest,
                "{update:?} on {ranks} ranks: state digest"
            );
        }
    }
}

#[test]
fn spatial_rank_kill_then_resume_is_bit_identical() {
    // Fault-tolerance parity for lattice runs: a rank kill yields a typed
    // SpatialDegradedRun with a boundary checkpoint, and the resumed run
    // stitches onto the clean trajectory exactly.
    let params = SpatialParams {
        width: 12,
        height: 12,
        generations: 30,
        seed: 0x57A8,
        update: SpatialUpdate::Fermi { beta: 1.2 },
        ..SpatialParams::default()
    };
    let clean = run_spatial_distributed(&SpatialDistConfig::new(
        params.clone(),
        InitPattern::SingleDefector,
        3,
    ))
    .unwrap();

    let mut faulty = SpatialDistConfig::new(params, InitPattern::SingleDefector, 3);
    faulty.faults.kills = vec![RankKill {
        rank: 1,
        generation: 12,
    }];
    let DistError::SpatialDegraded(d) = run_spatial_distributed(&faulty).unwrap_err() else {
        panic!("expected a SpatialDegradedRun");
    };
    assert!(d.dead_ranks.contains(&1), "{:?}", d.dead_ranks);
    let resumed_cfg = d
        .retry_config(&faulty)
        .expect("degraded run leaves a checkpoint");
    let resume_from = resumed_cfg.resume.as_ref().unwrap().generation as usize;
    let resumed = run_spatial_distributed(&resumed_cfg).unwrap();
    assert_eq!(resumed.grid, clean.grid, "final grid");
    assert_eq!(resumed.stats, clean.stats, "full RunStats");
    assert_eq!(
        serde_json::to_string(&resumed.records).unwrap(),
        serde_json::to_string(&clean.records[resume_from..].to_vec()).unwrap(),
        "record bits from generation {resume_from}"
    );
}

fn fixation_spec(seed: u64, replicates: u32) -> FixationSpec {
    let space = StateSpace::new(1).unwrap();
    let mut params = Params {
        mem_steps: 1,
        num_ssets: 8,
        generations: 200,
        seed,
        pc_rate: 1.0,
        mutation_rate: 0.0,
        rule: UpdateRule::Moran,
        ..Params::default()
    };
    params.game.rounds = 10;
    FixationSpec {
        params,
        resident: Strategy::Pure(evogame::ipd::classic::all_c(&space)),
        mutant: Strategy::Pure(evogame::ipd::classic::all_d(&space)),
        replicates,
    }
}

#[test]
fn fixation_distributed_equals_shared_at_every_rank_count() {
    // The fixation-workload counterpart of the equality suite: the
    // replicate-sharded runner must reproduce the shared-memory
    // FixationBatch bit for bit — per-replicate results, records, and
    // batch digest — at every rank count (docs/FIXATION.md).
    use evogame::cluster::dist::fixation::{run_fixation_distributed, FixationDistConfig};
    let spec = fixation_spec(0xF1_57A7, 20);
    let mut batch = FixationBatch::new(spec.clone()).unwrap();
    let shared = batch.run();
    let shared_records = serde_json::to_string(&shared.records()).unwrap();
    for ranks in [2usize, 4] {
        let out = run_fixation_distributed(&FixationDistConfig::new(spec.clone(), ranks)).unwrap();
        assert_eq!(
            out.outcome, shared,
            "{ranks} ranks: per-replicate results diverged"
        );
        assert_eq!(
            serde_json::to_string(&out.outcome.records()).unwrap(),
            shared_records,
            "{ranks} ranks: record bits diverged"
        );
        assert_eq!(
            out.outcome.digest(),
            shared.digest(),
            "{ranks} ranks: batch digest diverged"
        );
    }
}

#[test]
fn fixation_rank_kill_then_resume_is_bit_identical() {
    // Fault-tolerance parity for fixation batches: a rank kill yields a
    // typed FixationDegradedRun whose checkpoint is always present, and
    // the resumed batch stitches onto the clean outcome exactly.
    use evogame::cluster::dist::fixation::{run_fixation_distributed, FixationDistConfig};
    let spec = fixation_spec(0xF1_57A8, 20);
    let clean = run_fixation_distributed(&FixationDistConfig::new(spec.clone(), 3)).unwrap();

    let mut faulty = FixationDistConfig::new(spec, 3);
    // With 20 replicates over 2 compute ranks, rank 1 owns indices 0..10.
    faulty.faults.kills = vec![RankKill {
        rank: 1,
        generation: 6,
    }];
    let DistError::FixationDegraded(d) = run_fixation_distributed(&faulty).unwrap_err() else {
        panic!("expected a FixationDegradedRun");
    };
    assert!(d.dead_ranks.contains(&1), "{:?}", d.dead_ranks);
    assert_eq!(
        d.checkpoint.completed.len() as u32,
        d.completed_replicates,
        "the degraded checkpoint carries exactly the completed replicates"
    );
    let resumed = run_fixation_distributed(&d.retry_config(&faulty)).unwrap();
    assert_eq!(resumed.outcome, clean.outcome, "stitched outcome");
    assert_eq!(
        resumed.outcome.digest(),
        clean.outcome.digest(),
        "batch digest after kill→resume"
    );
}

#[test]
fn random_fault_plans_always_terminate_with_typed_outcomes() {
    // No fault schedule may hang or panic the distributed engine: every
    // seeded plan ends in a clean outcome or a restartable DegradedRun.
    for seed in 0..8u64 {
        let mut params = Params {
            mem_steps: 1,
            num_ssets: 8,
            generations: 30,
            seed,
            ..Params::default()
        };
        params.game.rounds = 8;
        let mut cfg = DistConfig::new(params, 5, FitnessPolicy::EveryGeneration);
        cfg.faults = FaultPlan::seeded(seed, 5, 30, 1, 3);
        match run_distributed(&cfg) {
            Ok(out) => assert_eq!(out.stats.generations, 30),
            Err(DistError::Degraded(d)) => {
                let cp = d.checkpoint.expect("restartable checkpoint");
                let mut resume_cfg =
                    DistConfig::new(cp.params.clone(), 5, FitnessPolicy::EveryGeneration);
                resume_cfg.resume = Some(cp);
                let resumed = run_distributed(&resume_cfg).unwrap();
                assert_eq!(resumed.stats.generations, 30, "seed {seed}: resume completes");
            }
            Err(other) => panic!("seed {seed}: unexpected error {other}"),
        }
    }
}

#[test]
fn checkpoint_restore_random_split_points() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC4EC);
    for case in 0..10 {
        let params = random_params(&mut rng);
        let total = params.generations;
        let split = rng.random_range(0..=total);
        let mut straight = Population::new(params.clone()).unwrap();
        straight.run(total);
        let mut first = Population::new(params).unwrap();
        first.run(split);
        let mut resumed = Population::restore(first.checkpoint()).unwrap();
        resumed.run(total - split);
        assert_eq!(
            resumed.assignments(),
            straight.assignments(),
            "case {case}: split at {split}/{total} diverged"
        );
    }
}
