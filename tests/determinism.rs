//! Thread-count invariance: the determinism contract promises bit-identical
//! trajectories at any rayon worker count (docs/STATIC_ANALYSIS.md,
//! docs/OBSERVABILITY.md). The vendored rayon reads `RAYON_NUM_THREADS` on
//! every parallel call, so one process can replay the same run at 1, 2, and
//! 8 workers and compare the full record stream byte for byte.
//!
//! Everything lives in one `#[test]` because the thread-count knob is a
//! process-global environment variable — concurrent tests would race on it.
//! (The checkpoint matrix below runs `ExecMode::Sequential`, so it never
//! touches the knob.)

use evogame::engine::params::MutationKind;
use evogame::engine::params::UpdateRule;
use evogame::prelude::*;

/// Evaluation knobs exercised by the matrix: the exact Markov fast path,
/// the deduplicated evaluator, and the cross-generation payoff memo-cache
/// (docs/PERFORMANCE.md). Every combination must be thread-count invariant.
#[derive(Clone, Copy)]
struct Knobs {
    expected_fitness: bool,
    dedup: bool,
    payoff_cache: bool,
}

/// One full run at the given worker count: every generation record
/// serialised to JSON, plus the final assignments, fitness bit patterns,
/// and aggregate statistics.
fn run(
    params: &Params,
    threads: &str,
    knobs: Knobs,
) -> (Vec<String>, Vec<StratId>, Vec<u64>, RunStats) {
    std::env::set_var("RAYON_NUM_THREADS", threads);
    let mut p = Population::new(params.clone()).unwrap();
    p.exec_mode = ExecMode::Rayon;
    p.expected_fitness = knobs.expected_fitness;
    p.dedup = knobs.dedup;
    p.use_payoff_cache = knobs.payoff_cache;
    let records: Vec<String> = (0..params.generations)
        .map(|_| serde_json::to_string(&p.step()).unwrap())
        .collect();
    let fitness_bits = p.fitness().iter().map(|f| f.to_bits()).collect();
    (records, p.assignments().to_vec(), fitness_bits, *p.stats())
}

#[test]
fn trajectories_are_bit_identical_across_thread_counts() {
    let configs = [
        // Pure strategies, noiseless: the dedup-eligible fast path.
        Params {
            mem_steps: 1,
            num_ssets: 24,
            generations: 30,
            seed: 0xDE7E_2177,
            kind: StrategyKind::Pure,
            ..Params::default()
        },
        // Mixed strategies under execution noise: every fitness value is a
        // float accumulated from sampled games — the path where iteration
        // order would leak straight into the bits.
        {
            let mut p = Params {
                mem_steps: 2,
                num_ssets: 17,
                generations: 25,
                seed: 0xB17_1DE7,
                kind: StrategyKind::Mixed,
                mutation_rate: 0.2,
                ..Params::default()
            };
            p.game.noise = 0.05;
            p.mutation_kind = MutationKind::Fresh;
            p
        },
    ];
    // Every evaluator knob combination the engine exposes. Dedup falls back
    // to the naive evaluator for non-deterministic configs, so it is safe in
    // both cases; the cache is probed by the pair, dedup, and expected paths.
    let knob_matrix = [
        Knobs { expected_fitness: false, dedup: false, payoff_cache: true },
        Knobs { expected_fitness: false, dedup: true, payoff_cache: true },
        Knobs { expected_fitness: false, dedup: true, payoff_cache: false },
        Knobs { expected_fitness: true, dedup: false, payoff_cache: true },
        Knobs { expected_fitness: true, dedup: false, payoff_cache: false },
    ];
    for (case, params) in configs.iter().enumerate() {
        let mut per_knob = Vec::new();
        for (k, knobs) in knob_matrix.iter().enumerate() {
            let baseline = run(params, "1", *knobs);
            for threads in ["2", "8"] {
                let got = run(params, threads, *knobs);
                assert_eq!(
                    baseline.0, got.0,
                    "case {case} knobs {k}: generation record stream diverged \
                     at {threads} threads"
                );
                assert_eq!(
                    baseline.1, got.1,
                    "case {case} knobs {k}: final assignments diverged at {threads} threads"
                );
                assert_eq!(
                    baseline.2, got.2,
                    "case {case} knobs {k}: final fitness bits diverged at {threads} threads"
                );
                assert_eq!(
                    baseline.3, got.3,
                    "case {case} knobs {k}: RunStats diverged at {threads} threads"
                );
            }
            per_knob.push(baseline);
        }
        // The payoff cache is a pure cost knob: with every other knob held
        // fixed, cache-on and cache-off runs must be fully identical — same
        // records, same bits, same games accounting (docs/PERFORMANCE.md).
        for (on, off) in [(1usize, 2usize), (3, 4)] {
            assert_eq!(
                per_knob[on], per_knob[off],
                "case {case}: payoff cache changed the trajectory \
                 (knobs {on} vs {off})"
            );
        }
    }

    // Structured populations ride the same contract: the lattice play and
    // decide phases are rayon-parallel over per-cell `Domain::Graph`
    // streams (docs/GRAPH.md), so the spatial record stream, final grid,
    // stats, and state digest must be just as thread-count invariant.
    let spatial_run = |threads: &str, update: SpatialUpdate| {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let params = SpatialParams {
            width: 16,
            height: 16,
            generations: 25,
            seed: 0x5A71A1,
            update,
            ..SpatialParams::default()
        };
        let mut pop = SpatialPopulation::new(params.clone(), InitPattern::SingleDefector);
        let records: Vec<String> = (0..params.generations)
            .map(|_| serde_json::to_string(&pop.step()).unwrap())
            .collect();
        let snap = pop.snapshot();
        let digest = evogame::engine::record::state_digest(&snap.assignments, &snap.features);
        (records, pop.grid().to_vec(), *pop.stats(), digest)
    };
    for (u, update) in [SpatialUpdate::BestNeighbor, SpatialUpdate::Fermi { beta: 0.5 }]
        .into_iter()
        .enumerate()
    {
        let baseline = spatial_run("1", update);
        for threads in ["2", "8"] {
            let got = spatial_run(threads, update);
            assert_eq!(
                baseline.0, got.0,
                "spatial update {u}: record stream diverged at {threads} threads"
            );
            assert_eq!(
                baseline.1, got.1,
                "spatial update {u}: final grid diverged at {threads} threads"
            );
            assert_eq!(
                baseline.2, got.2,
                "spatial update {u}: RunStats diverged at {threads} threads"
            );
            assert_eq!(
                baseline.3, got.3,
                "spatial update {u}: state digest diverged at {threads} threads"
            );
        }
    }
    // The fixation workload fans replicates out through the same rayon
    // stub; each replicate is a pure function of (spec, index)
    // (docs/FIXATION.md), so the full per-replicate result set and batch
    // digest must be thread-count invariant too.
    let fixation_run = |threads: &str| {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let space = StateSpace::new(1).unwrap();
        let mut params = Params {
            mem_steps: 1,
            num_ssets: 8,
            generations: 200,
            seed: 0xF1_8A7E,
            pc_rate: 1.0,
            mutation_rate: 0.0,
            rule: UpdateRule::Moran,
            ..Params::default()
        };
        params.game.rounds = 10;
        let spec = FixationSpec {
            params,
            resident: Strategy::Pure(evogame::ipd::classic::all_c(&space)),
            mutant: Strategy::Pure(evogame::ipd::classic::all_d(&space)),
            replicates: 24,
        };
        let mut batch = FixationBatch::new(spec).unwrap();
        let outcome = batch.run();
        (outcome.digest(), outcome)
    };
    let baseline = fixation_run("1");
    for threads in ["2", "8"] {
        let got = fixation_run(threads);
        assert_eq!(
            baseline.1, got.1,
            "fixation: per-replicate results diverged at {threads} threads"
        );
        assert_eq!(
            baseline.0, got.0,
            "fixation: batch digest diverged at {threads} threads"
        );
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

#[test]
fn checkpoint_roundtrip_is_bit_identical_for_every_update_rule() {
    // The fault-tolerance contract (docs/FAULT_TOLERANCE.md): serialise a
    // checkpoint to JSON mid-run, parse it back, resume — and the stitched
    // record stream, fitness bit patterns, and RunStats must equal the
    // uninterrupted run exactly, for all three update rules.
    for (r, rule) in [
        UpdateRule::PairwiseComparison,
        UpdateRule::Moran,
        UpdateRule::ImitateBest,
    ]
    .into_iter()
    .enumerate()
    {
        let mut params = Params {
            mem_steps: 1,
            num_ssets: 12,
            generations: 40,
            seed: 0xCC_0FFE + r as u64,
            mutation_rate: 0.2,
            rule,
            ..Params::default()
        };
        params.game.rounds = 12;

        let mut straight = Population::new(params.clone()).unwrap();
        straight.exec_mode = ExecMode::Sequential;
        let straight_records: Vec<String> = (0..params.generations)
            .map(|_| serde_json::to_string(&straight.step()).unwrap())
            .collect();

        for split in [1u64, 17, 39] {
            let mut first = Population::new(params.clone()).unwrap();
            first.exec_mode = ExecMode::Sequential;
            let mut records: Vec<String> = (0..split)
                .map(|_| serde_json::to_string(&first.step()).unwrap())
                .collect();
            // Through the wire format, not just the in-memory struct: the
            // JSON round trip itself must preserve every f64 bit.
            let json = serde_json::to_string(&first.checkpoint()).unwrap();
            let cp: evogame::engine::record::Checkpoint = serde_json::from_str(&json).unwrap();
            let mut resumed = Population::restore(cp).unwrap();
            resumed.exec_mode = ExecMode::Sequential;
            records.extend(
                (split..params.generations)
                    .map(|_| serde_json::to_string(&resumed.step()).unwrap()),
            );

            assert_eq!(
                records, straight_records,
                "{rule:?} split {split}: record stream diverged"
            );
            assert_eq!(
                resumed.assignments(),
                straight.assignments(),
                "{rule:?} split {split}: assignments diverged"
            );
            assert_eq!(
                resumed.stats(),
                straight.stats(),
                "{rule:?} split {split}: RunStats diverged"
            );
        }
    }
}
