//! End-to-end integration tests across the workspace crates, driven through
//! the public `evogame` facade exactly as a downstream user would.

use evogame::cluster::dist::{run_distributed, DistConfig};
use evogame::ipd::classic;
use evogame::ipd::tournament::{Entrant, RoundRobin};
use evogame::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_params(seed: u64) -> Params {
    Params {
        mem_steps: 1,
        num_ssets: 16,
        generations: 120,
        seed,
        game: GameConfig {
            rounds: 24,
            ..GameConfig::default()
        },
        ..Params::default()
    }
}

#[test]
fn facade_quickstart_compiles_and_runs() {
    let mut pop = Population::new(small_params(1)).unwrap();
    let stats = pop.run_to_end();
    assert_eq!(stats.generations, 120);
    assert!(pop.mean_cooperativity() >= 0.0);
}

#[test]
fn shared_memory_and_distributed_agree_end_to_end() {
    let params = small_params(5);
    let mut shared = Population::new(params.clone()).unwrap();
    shared.run_to_end();
    for ranks in [2usize, 4, 7] {
        let dist = run_distributed(&DistConfig::new(
            params.clone(),
            ranks,
            FitnessPolicy::EveryGeneration,
        ))
        .unwrap();
        assert_eq!(
            dist.assignments,
            shared.assignments(),
            "{ranks} ranks diverged from shared-memory run"
        );
    }
}

#[test]
fn snapshot_feeds_kmeans_and_heatmap() {
    let mut pop = Population::new(small_params(9)).unwrap();
    pop.run(50);
    let snap = pop.snapshot();
    let clusters = kmeans(
        &snap.features,
        &KMeansConfig {
            k: 4,
            seed: 0,
            ..KMeansConfig::default()
        },
    );
    assert_eq!(clusters.assignments.len(), 16);
    let ascii = render_ascii(&snap, &HeatmapOptions::default());
    assert_eq!(ascii.lines().count(), 16);
    let ppm = render_ppm(&snap, &HeatmapOptions::default());
    assert!(ppm.starts_with(b"P6\n"));
}

#[test]
fn wsls_gains_ground_in_probabilistic_population() {
    // A scaled-down §VI-A validation: after a modest number of generations
    // the WSLS-rounding share should grow well beyond its ~1/16 random
    // baseline. (The full 85% figure needs the fig2 regenerator's longer
    // runs.) At 24 SSets the paper's μ = 0.05 keeps the population churning
    // faster than WSLS can fixate, so this scaled-down run lowers μ to 0.01
    // where the attractor is reachable within the horizon; the seed is
    // calibrated against the vendored ChaCha8 streams (see vendor/).
    let mut params = Params::wsls_validation(24, 150_000);
    params.mutation_rate = 0.01;
    params.seed = 2;
    let mut pop = Population::new(params).unwrap();
    pop.fitness_policy = FitnessPolicy::OnDemand;
    let wsls = [1.0, 0.0, 0.0, 1.0];
    let start = fraction_matching(&pop.snapshot(), &wsls, 0.499);
    pop.run_to_end();
    let end = fraction_matching(&pop.snapshot(), &wsls, 0.499);
    assert!(
        end > start.max(0.3),
        "WSLS share should grow: start {start:.3}, end {end:.3}"
    );
}

#[test]
fn tournament_through_facade() {
    let space = StateSpace::new(1).unwrap();
    let entrants: Vec<Entrant> = classic::roster(&space)
        .into_iter()
        .map(|(name, s)| Entrant {
            name: name.into(),
            strategy: Strategy::Pure(s),
        })
        .collect();
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let result = RoundRobin::new(space, GameConfig::default())
        .with_repetitions(3)
        .run(&entrants, &mut rng);
    assert_eq!(result.standings.len(), entrants.len());
    assert_ne!(result.winner(), "ALLD", "defection cannot win a reciprocal roster");
}

#[test]
fn perf_model_reproduces_paper_headlines() {
    let model = PerfModel::new(MachineProfile::bluegene_p());
    let w = Workload::large_study(4_096 * 1_024, 1_000);
    let e = model.efficiency(&w, 1_024, 262_144);
    assert!((e - 0.82).abs() < 0.05, "262K-proc efficiency {e} vs paper 0.82");
    let weak = model.weak_scaling(&Workload::large_study(0, 1_000), 4_096, &[1_024, 262_144]);
    assert!((weak[0].1 - weak[1].1).abs() < 1.0, "weak scaling must stay flat");
}

#[test]
fn memory_six_population_full_stack() {
    // The headline capability: a memory-six population (2^4096 strategy
    // space) evolving end-to-end with snapshot analysis.
    let params = Params {
        mem_steps: 6,
        num_ssets: 8,
        generations: 60,
        seed: 4,
        game: GameConfig {
            rounds: 50,
            ..GameConfig::default()
        },
        ..Params::default()
    };
    let mut pop = Population::new(params).unwrap();
    pop.fitness_policy = FitnessPolicy::OnDemand;
    pop.run_to_end();
    let snap = pop.snapshot();
    assert_eq!(snap.num_states(), 4_096);
    let c = mean_cooperativity(&snap);
    assert!((0.0..=1.0).contains(&c));
    // Random memory-six strategies hover near half cooperation.
    assert!((0.3..=0.7).contains(&c), "cooperativity {c}");
}

#[test]
fn dedup_accelerates_fixated_population_without_changing_results() {
    let mut params = small_params(11);
    params.generations = 200;
    let mut plain = Population::new(params.clone()).unwrap();
    let mut fast = Population::new(params).unwrap();
    fast.dedup = true;
    plain.run_to_end();
    fast.run_to_end();
    assert_eq!(plain.assignments(), fast.assignments());
    assert!(
        fast.stats().games_played < plain.stats().games_played,
        "dedup should skip duplicate-strategy games ({} vs {})",
        fast.stats().games_played,
        plain.stats().games_played
    );
}
