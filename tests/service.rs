//! Job-server lifecycle state machine, end to end against the real
//! engines (docs/SERVICE.md): submit → run → checkpoint-pause → resume,
//! degraded → retry-with-budget → exhausted, queue-full admission
//! rejection — all deterministic under a fixed seed.

use evogame::cluster::faults::RankKill;
use evogame::engine::record::state_digest;
use evogame::prelude::*;
use evogame::svc::{AdmitError, Backend, JobRequest, JobStatus, Server, ServerConfig};

fn params(seed: u64, generations: u64, ssets: usize) -> Params {
    Params {
        num_ssets: ssets,
        generations,
        seed,
        ..Params::default()
    }
}

/// Digest of an uninterrupted shared-memory run — the reference every
/// service-mediated variant must reproduce bit for bit.
fn straight_digest(p: Params) -> String {
    let mut pop = Population::new(p).expect("valid params");
    pop.run_to_end();
    format!(
        "{:016x}",
        state_digest(&pop.assignments(), &pop.snapshot().features)
    )
}

fn completed(status: JobStatus) -> (String, u32) {
    match status {
        JobStatus::Completed {
            state_digest,
            retries,
        } => (state_digest, retries),
        other => panic!("expected completion, got {other:?}"),
    }
}

#[test]
fn pause_mid_run_then_resume_is_bit_identical_to_straight_run() {
    // Long enough that the pause request always lands mid-run: the
    // worker checks the flag every generation, so the only way to miss
    // is completing all 40k generations before our pause call.
    let p = params(3, 40_000, 8);
    let server = Server::new(ServerConfig {
        workers: 1,
        queue_depth: 8,
    });
    server
        .submit(JobRequest::new("pause-me", p.clone()))
        .unwrap();
    while server.status("pause-me") == Some(JobStatus::Queued) {
        std::thread::yield_now();
    }
    assert!(server.pause("pause-me"), "running shared job accepts pause");
    let paused = server.wait("pause-me").unwrap();
    let JobStatus::Paused { generation } = paused else {
        panic!("job settled as {paused:?} before the pause landed — enlarge the run");
    };
    assert!(
        generation > 0 && generation < 40_000,
        "checkpointed mid-run at generation {generation}"
    );

    assert!(server.resume("pause-me"), "paused job resumes");
    let (digest, retries) = completed(server.wait("pause-me").unwrap());
    assert_eq!(retries, 0, "pause is not a retry");
    assert_eq!(
        digest,
        straight_digest(p.clone()),
        "pause/resume through the service is bit-identical to never pausing"
    );

    // The streamed record tail covers every generation exactly once
    // (pre-pause segment + resumed segment, no overlap) and matches the
    // uninterrupted engine trajectory record for record.
    let records = server.records("pause-me").unwrap();
    assert_eq!(records.len(), 40_000);
    let mut pop = Population::new(p).unwrap();
    for rec in &records {
        assert_eq!(*rec, pop.step(), "record-identical at generation {}", rec.generation);
    }
    server.shutdown();
}

#[test]
fn degraded_distributed_job_retries_within_budget_to_clean_digest() {
    let p = params(7, 60, 12);
    let server = Server::new(ServerConfig {
        workers: 1,
        queue_depth: 8,
    });
    let before = evogame::obs::counters().snapshot();

    let mut faulty = JobRequest::new("faulty", p.clone());
    faulty.backend = Backend::Distributed { ranks: 4 };
    faulty.retry_budget = 1;
    faulty.faults.kills.push(RankKill {
        rank: 2,
        generation: 30,
    });
    faulty.faults.recv_timeout_ms = Some(200);
    server.submit(faulty).unwrap();
    let (faulty_digest, retries) = completed(server.wait("faulty").unwrap());
    assert_eq!(retries, 1, "one automatic re-enqueue from the degraded checkpoint");

    let mut clean = JobRequest::new("clean", p);
    clean.backend = Backend::Distributed { ranks: 4 };
    server.submit(clean).unwrap();
    let (clean_digest, clean_retries) = completed(server.wait("clean").unwrap());
    assert_eq!(clean_retries, 0);
    assert_eq!(
        faulty_digest, clean_digest,
        "kill + auto-resume reaches the same final state as the uninterrupted run"
    );

    let delta = evogame::obs::counters().snapshot().delta_since(&before);
    assert!(delta.jobs_retried >= 1, "retry was counted");
    assert!(delta.jobs_completed >= 2);
    server.shutdown();
}

#[test]
fn degraded_job_with_exhausted_budget_fails_terminally() {
    let p = params(7, 60, 12);
    let server = Server::new(ServerConfig {
        workers: 1,
        queue_depth: 8,
    });
    let mut req = JobRequest::new("no-budget", p);
    req.backend = Backend::Distributed { ranks: 4 };
    req.retry_budget = 0;
    req.faults.kills.push(RankKill {
        rank: 2,
        generation: 30,
    });
    req.faults.recv_timeout_ms = Some(200);
    server.submit(req).unwrap();
    let status = server.wait("no-budget").unwrap();
    let JobStatus::Failed { reason, retries } = status else {
        panic!("expected terminal failure, got {status:?}");
    };
    assert_eq!(retries, 0);
    assert!(
        reason.contains("degraded") && reason.contains("budget"),
        "failure says why: {reason}"
    );
    assert!(server.receipt("no-budget").is_none(), "no receipt for a failed job");
    // Terminal means terminal: no lifecycle verb revives it.
    assert!(!server.pause("no-budget"));
    assert!(!server.resume("no-budget"));
    server.shutdown();
}

#[test]
fn queue_full_and_duplicate_rejections_are_typed() {
    // Zero workers: nothing drains, so the bound is hit deterministically.
    let server = Server::new(ServerConfig {
        workers: 0,
        queue_depth: 2,
    });
    server.submit(JobRequest::new("a", params(1, 10, 8))).unwrap();
    server.submit(JobRequest::new("b", params(2, 10, 8))).unwrap();
    assert_eq!(
        server.submit(JobRequest::new("c", params(3, 10, 8))),
        Err(AdmitError::QueueFull { depth: 2 }),
        "typed backpressure at the configured bound"
    );
    assert_eq!(
        server.submit(JobRequest::new("a", params(4, 10, 8))),
        Err(AdmitError::DuplicateId { id: "a".into() })
    );
    assert!(server.status("c").is_none(), "rejected job left no entry");
    server.shutdown();
}

#[test]
fn fixed_seed_receipts_are_identical_across_servers_and_backends() {
    let p = params(11, 60, 12);
    let run_batch = || {
        let server = Server::new(ServerConfig {
            workers: 2,
            queue_depth: 8,
        });
        server.submit(JobRequest::new("shared", p.clone())).unwrap();
        let mut dist = JobRequest::new("dist", p.clone());
        dist.backend = Backend::Distributed { ranks: 4 };
        server.submit(dist).unwrap();
        let shared = completed(server.wait("shared").unwrap()).0;
        let dist = completed(server.wait("dist").unwrap()).0;
        server.shutdown();
        (shared, dist)
    };
    let (shared1, dist1) = run_batch();
    let (shared2, dist2) = run_batch();
    assert_eq!(shared1, shared2, "same seed, same receipt digest");
    assert_eq!(dist1, dist2);
    assert_eq!(
        shared1, dist1,
        "shared and distributed backends agree bit for bit"
    );
    assert_eq!(shared1, straight_digest(p), "and both match the bare engine");
}
