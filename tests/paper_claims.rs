//! Integration tests pinning the paper's qualitative claims, one per
//! section of the evaluation — the reproduction's acceptance suite.

use evogame::ipd::classic;
use evogame::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// §III-A: with T > R > P > S, defection dominates the one-shot game.
#[test]
fn one_shot_defection_dominates() {
    let m = PayoffMatrix::default();
    assert!(m.is_prisoners_dilemma());
    // Whatever the opponent does, defecting pays at least as much.
    for opp in [Move::Cooperate, Move::Defect] {
        assert!(m.payoff(Move::Defect, opp) > m.payoff(Move::Cooperate, opp));
    }
}

/// §III-B: direct reciprocity — TFT sustains cooperation against itself
/// and cannot be exploited repeatedly.
#[test]
fn tft_reciprocity() {
    let space = StateSpace::new(1).unwrap();
    let tft = classic::tft(&space);
    let cfg = GameConfig::default();
    let self_play = play_deterministic(&space, &tft, &tft, &cfg);
    assert_eq!(self_play.cooperation_rate(), 1.0);
    let vs_alld = play_deterministic(&space, &tft, &classic::all_d(&space), &cfg);
    // Loses only the first round.
    assert_eq!(vs_alld.coop_a, 1);
}

/// §III-E: "an error … would be fatal for the TFT strategy" but WSLS
/// recovers — WSLS self-play outscores TFT self-play under noise.
#[test]
fn wsls_beats_tft_under_errors() {
    let space = StateSpace::new(1).unwrap();
    let cfg = GameConfig {
        noise: 0.03,
        ..GameConfig::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let wsls = Strategy::Pure(classic::wsls(&space));
    let tft = Strategy::Pure(classic::tft(&space));
    let reps = 300;
    let mut wsls_total = 0.0;
    let mut tft_total = 0.0;
    for _ in 0..reps {
        wsls_total += play(&space, &wsls, &wsls, &cfg, &mut rng).fitness_a;
        tft_total += play(&space, &tft, &tft, &cfg, &mut rng).fitness_a;
    }
    assert!(wsls_total > tft_total * 1.1, "WSLS {wsls_total} vs TFT {tft_total}");
}

/// §III-D / Table IV: the strategy space sizes the paper reports.
#[test]
fn strategy_space_sizes_match_table_iv() {
    // Number of pure strategies is 2^(4^n): 16, 65,536, 1.84e19, 1.16e77,
    // 2^2048, 2^4096.
    let log2_sizes: Vec<usize> = (1..=6)
        .map(|n| StateSpace::new(n).unwrap().log2_num_pure_strategies())
        .collect();
    assert_eq!(log2_sizes, vec![4, 16, 64, 256, 1_024, 4_096]);
    assert_eq!(2f64.powi(4), 16.0);
    assert_eq!(2f64.powi(16), 65_536.0);
    assert!((2f64.powi(64) - 1.84e19).abs() / 1.84e19 < 0.01);
    assert!((2f64.powi(256) - 1.16e77).abs() / 1.16e77 < 0.01);
}

/// §IV-B / Eq. 1: Fermi learning — β sweeps from random drift to
/// deterministic imitation.
#[test]
fn fermi_selection_intensity_sweep() {
    assert_eq!(fermi_probability(0.0, 10.0, 0.0), 0.5);
    let mild = fermi_probability(0.1, 10.0, 0.0);
    let strong = fermi_probability(10.0, 10.0, 0.0);
    assert!(0.5 < mild && mild < strong && strong < 1.0 + 1e-12);
    assert_eq!(fermi_probability(f64::INFINITY, 10.0, 0.0), 1.0);
}

/// §V-C: the paper's standard parameters are this library's defaults.
#[test]
fn default_parameters_match_section_v_c() {
    let p = Params::default();
    assert_eq!(p.game.payoff.as_rstp(), [3.0, 0.0, 4.0, 1.0]);
    assert_eq!(p.game.rounds, 200);
    assert_eq!(p.pc_rate, 0.10);
    assert_eq!(p.mutation_rate, 0.05);
}

/// §VI-C: the headline population arithmetic — 4,096 SSets/proc on 64
/// racks gives 2^30 SSets and O(10^18) agents.
#[test]
fn headline_population_arithmetic() {
    let p = Params {
        num_ssets: 4_096 * 262_144,
        ..Params::default()
    };
    assert_eq!(p.num_ssets, 1_073_741_824);
    assert!(p.total_agents() >= 1_000_000_000_000_000_000);
}

/// §VI-A: once WSLS takes over a probabilistic population, mean payoff
/// sits well above the random-strategy baseline (mutual cooperation pays
/// R = 3 per round; random-vs-random play averages 2).
#[test]
fn wsls_takeover_raises_population_payoff() {
    // As in tests/end_to_end.rs: at 24 SSets the paper's mu = 0.05 churns
    // faster than WSLS can fixate, so this scaled-down run lowers mu to
    // 0.01 where the attractor is reachable; the seed is calibrated
    // against the vendored ChaCha8 streams (see vendor/).
    let mut params = Params::wsls_validation(24, 150_000);
    params.mutation_rate = 0.01;
    params.seed = 2;
    let mut pop = Population::new(params).unwrap();
    pop.fitness_policy = FitnessPolicy::OnDemand;
    // Window-averaged mean per-round fitness before and after evolution
    // (single-generation fitness of stochastic games is noisy).
    let window = |pop: &mut Population| -> f64 {
        let mut total = 0.0;
        let s = pop.params().num_ssets as f64;
        let per_round = pop.params().game.rounds as f64 * s;
        for g in 0..20u64 {
            let f = evo_core::fitness::evaluate(
                pop.space(),
                pop.assignments(),
                pop.pool(),
                &pop.params().game,
                pop.params().seed,
                pop.generation() + g,
                ExecMode::Sequential,
            );
            total += f.iter().sum::<f64>() / s / per_round;
        }
        total / 20.0
    };
    let before = window(&mut pop);
    pop.run_to_end();
    let after = window(&mut pop);
    assert!(
        after > before,
        "WSLS takeover should raise mean payoff: {before:.3} -> {after:.3}"
    );
    assert!(after > 2.2, "cooperative regime pays near R = 3, got {after:.3}");
}
