//! End-to-end tests of the `evogame-cli` binary, exactly as a user would
//! drive it.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_evogame-cli"))
}

fn run_ok(args: &[&str]) -> (String, String) {
    let out = cli().args(args).output().expect("spawn cli");
    assert!(
        out.status.success(),
        "{:?} failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = cli().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_command_fails_gracefully() {
    let out = cli().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn run_emits_csv_trajectory() {
    let (stdout, stderr) = run_ok(&[
        "run",
        "--ssets",
        "8",
        "--generations",
        "40",
        "--rounds",
        "10",
        "--sample-every",
        "20",
        "--on-demand",
    ]);
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(lines[0].starts_with("generation,cooperativity"));
    assert_eq!(lines.len(), 1 + 3, "gen 0, 20, 40");
    assert!(stderr.contains("40 generations"));
}

#[test]
fn run_is_deterministic_per_seed() {
    let args = [
        "run", "--ssets", "10", "--generations", "60", "--rounds", "8", "--seed", "5",
    ];
    let (a, _) = run_ok(&args);
    let (b, _) = run_ok(&args);
    assert_eq!(a, b);
    let (c, _) = run_ok(&[
        "run", "--ssets", "10", "--generations", "60", "--rounds", "8", "--seed", "6",
    ]);
    assert_ne!(a, c);
}

#[test]
fn run_writes_records_file() {
    let path = std::env::temp_dir().join("evogame_cli_test_records.jsonl");
    let _ = std::fs::remove_file(&path);
    run_ok(&[
        "run",
        "--ssets",
        "6",
        "--generations",
        "25",
        "--rounds",
        "8",
        "--records",
        path.to_str().unwrap(),
    ]);
    let text = std::fs::read_to_string(&path).expect("records written");
    assert_eq!(text.lines().count(), 25);
    // Every line parses as a generation record.
    let recs = evogame::engine::record::read_generations(&text).expect("valid JSONL");
    assert_eq!(recs.len(), 25);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn run_rejects_bad_rule() {
    let out = cli()
        .args(["run", "--rule", "telepathy"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown rule"));
}

#[test]
fn tournament_prints_standings() {
    let (stdout, _) = run_ok(&["tournament", "--mem", "1", "--reps", "2", "--rounds", "50"]);
    assert!(stdout.contains("rank"));
    assert!(stdout.contains("TFT"));
    assert!(stdout.contains("winner:"));
}

#[test]
fn predict_reports_paper_headline() {
    let (stdout, _) = run_ok(&["predict", "--procs", "262144"]);
    assert!(stdout.contains("predicted total"));
    assert!(stdout.contains("efficiency vs 1024 procs: 82"));
}

#[test]
fn distributed_runs_and_reports() {
    let (stdout, _) = run_ok(&[
        "distributed",
        "--ranks",
        "3",
        "--ssets",
        "6",
        "--generations",
        "30",
        "--rounds",
        "8",
    ]);
    assert!(stdout.contains("distributed run on 3 ranks"));
    assert!(stdout.contains("messages"));
}

#[test]
fn classify_names_wsls() {
    let (stdout, _) = run_ok(&["classify", "m1:6"]);
    assert!(stdout.contains("exactly WSLS"));
    let (gtft, _) = run_ok(&["classify", "m1:p:1,0.6666666666666666,1,0.6666666666666666"]);
    assert!(gtft.contains("GTFT"));
}

#[test]
fn classify_rejects_malformed_codes() {
    let out = cli().args(["classify", "m1:zz"]).output().expect("spawn");
    assert!(!out.status.success());
}
