//! End-to-end tests of the `evogame-cli` binary, exactly as a user would
//! drive it.

use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_evogame-cli"))
}

fn run_ok(args: &[&str]) -> (String, String) {
    let out = cli().args(args).output().expect("spawn cli");
    assert!(
        out.status.success(),
        "{:?} failed: {}",
        args,
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = cli().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage:"));
}

#[test]
fn unknown_command_fails_gracefully() {
    let out = cli().arg("frobnicate").output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn run_emits_csv_trajectory() {
    let (stdout, stderr) = run_ok(&[
        "run",
        "--ssets",
        "8",
        "--generations",
        "40",
        "--rounds",
        "10",
        "--sample-every",
        "20",
        "--on-demand",
    ]);
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(lines[0].starts_with("generation,cooperativity"));
    assert_eq!(lines.len(), 1 + 3, "gen 0, 20, 40");
    assert!(stderr.contains("40 generations"));
}

#[test]
fn run_is_deterministic_per_seed() {
    let args = [
        "run", "--ssets", "10", "--generations", "60", "--rounds", "8", "--seed", "5",
    ];
    let (a, _) = run_ok(&args);
    let (b, _) = run_ok(&args);
    assert_eq!(a, b);
    let (c, _) = run_ok(&[
        "run", "--ssets", "10", "--generations", "60", "--rounds", "8", "--seed", "6",
    ]);
    assert_ne!(a, c);
}

#[test]
fn run_writes_records_file() {
    let path = std::env::temp_dir().join("evogame_cli_test_records.jsonl");
    let _ = std::fs::remove_file(&path);
    run_ok(&[
        "run",
        "--ssets",
        "6",
        "--generations",
        "25",
        "--rounds",
        "8",
        "--records",
        path.to_str().unwrap(),
    ]);
    let text = std::fs::read_to_string(&path).expect("records written");
    assert_eq!(text.lines().count(), 25);
    // Every line parses as a generation record.
    let recs = evogame::engine::record::read_generations(&text).expect("valid JSONL");
    assert_eq!(recs.len(), 25);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn run_rejects_bad_rule() {
    let out = cli()
        .args(["run", "--rule", "telepathy"])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown rule"));
}

#[test]
fn tournament_prints_standings() {
    let (stdout, _) = run_ok(&["tournament", "--mem", "1", "--reps", "2", "--rounds", "50"]);
    assert!(stdout.contains("rank"));
    assert!(stdout.contains("TFT"));
    assert!(stdout.contains("winner:"));
}

#[test]
fn predict_reports_paper_headline() {
    let (stdout, _) = run_ok(&["predict", "--procs", "262144"]);
    assert!(stdout.contains("predicted total"));
    assert!(stdout.contains("efficiency vs 1024 procs: 82"));
}

#[test]
fn distributed_runs_and_reports() {
    let (stdout, _) = run_ok(&[
        "distributed",
        "--ranks",
        "3",
        "--ssets",
        "6",
        "--generations",
        "30",
        "--rounds",
        "8",
    ]);
    assert!(stdout.contains("distributed run on 3 ranks"));
    assert!(stdout.contains("messages"));
}

#[test]
fn classify_names_wsls() {
    let (stdout, _) = run_ok(&["classify", "m1:6"]);
    assert!(stdout.contains("exactly WSLS"));
    let (gtft, _) = run_ok(&["classify", "m1:p:1,0.6666666666666666,1,0.6666666666666666"]);
    assert!(gtft.contains("GTFT"));
}

#[test]
fn classify_rejects_malformed_codes() {
    let out = cli().args(["classify", "m1:zz"]).output().expect("spawn");
    assert!(!out.status.success());
}

#[test]
fn checkpoint_every_without_out_rejected_identically_by_both_engines() {
    // Satellite contract: `run` and `distributed` validate the
    // checkpoint flag pair the same way, with the same message.
    let mut errors = Vec::new();
    for sub in ["run", "distributed"] {
        let out = cli()
            .args([
                sub, "--ssets", "6", "--generations", "10", "--checkpoint-every", "5",
            ])
            .output()
            .expect("spawn");
        assert!(
            !out.status.success(),
            "{sub} must reject --checkpoint-every without --checkpoint-out"
        );
        let stderr = String::from_utf8_lossy(&out.stderr).to_string();
        assert!(
            stderr.contains("--checkpoint-every needs --checkpoint-out FILE"),
            "{sub} stderr: {stderr}"
        );
        errors.push(stderr.lines().last().unwrap_or("").to_string());
    }
    assert_eq!(errors[0], errors[1], "identical validation in both engines");
}

/// One JSONL job-request line for the serve tests.
fn job_line(id: &str, extra: &str) -> String {
    use evogame::prelude::*;
    let params = Params {
        num_ssets: 12,
        generations: 60,
        seed: 7,
        pc_rate: 0.25,
        ..Params::default()
    };
    let params_json = serde_json::to_string(&params).expect("params serialise");
    if extra.is_empty() {
        format!("{{\"id\":\"{id}\",\"params\":{params_json}}}")
    } else {
        format!("{{\"id\":\"{id}\",\"params\":{params_json},{extra}}}")
    }
}

#[test]
fn serve_runs_mixed_batch_with_deterministic_receipts() {
    let base = std::env::temp_dir().join(format!("evogame_serve_test_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let requests = base.join("jobs.jsonl");
    let lines = [
        job_line("clean-shared", ""),
        job_line("clean-dist", "\"backend\":{\"Distributed\":{\"ranks\":4}}"),
        job_line(
            "faulty-dist",
            "\"backend\":{\"Distributed\":{\"ranks\":4}},\"retry_budget\":2,\
             \"faults\":{\"kills\":[{\"rank\":2,\"generation\":30}],\"recv_timeout_ms\":200}",
        ),
    ];
    std::fs::write(&requests, lines.join("\n") + "\n").unwrap();

    let serve = |spool: &std::path::Path| -> (String, String) {
        run_ok(&[
            "serve",
            "--requests",
            requests.to_str().unwrap(),
            "--spool",
            spool.to_str().unwrap(),
        ])
    };
    let spool1 = base.join("spool1");
    let spool2 = base.join("spool2");
    let (stdout, stderr) = serve(&spool1);
    let (stdout2, _) = serve(&spool2);

    // All three jobs completed; the killed-rank job auto-retried.
    for id in ["clean-shared", "clean-dist", "faulty-dist"] {
        assert!(stdout.contains(&format!("job {id}: completed")), "{stdout}");
    }
    assert!(stdout.contains("faulty-dist: completed | state digest"), "{stdout}");
    assert!(stdout.contains("retries 1"), "retry visible in summary: {stdout}");
    assert!(stderr.contains("retried 1"), "retry counted: {stderr}");
    assert_eq!(stdout, stdout2, "re-running the same submission file is bit-identical");

    // Receipts exist and carry identical digests across the two runs —
    // and the shared and distributed backends agree on the same state.
    let digest = |spool: &std::path::Path, id: &str| -> String {
        let text =
            std::fs::read_to_string(spool.join(id).join("receipt.json")).expect("receipt spooled");
        let receipt: serde::Value = serde_json::from_str(&text).unwrap();
        match receipt.get("state_digest") {
            Some(serde::Value::Str(s)) => s.clone(),
            other => panic!("receipt missing state_digest: {other:?}"),
        }
    };
    let d1 = digest(&spool1, "clean-shared");
    for id in ["clean-shared", "clean-dist", "faulty-dist"] {
        assert_eq!(digest(&spool1, id), digest(&spool2, id), "{id} deterministic");
        assert_eq!(digest(&spool1, id), d1, "{id} agrees with the shared-memory digest");
    }
    // The shared job streamed its full record trail.
    let records = std::fs::read_to_string(spool1.join("clean-shared/records.jsonl")).unwrap();
    assert_eq!(records.lines().count(), 60);
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn serve_reports_rejections_and_exits_nonzero() {
    let base = std::env::temp_dir().join(format!("evogame_serve_rej_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&base).unwrap();
    let requests = base.join("jobs.jsonl");
    // One good job, one malformed line, one duplicate id.
    let lines = [job_line("ok", ""), "not json at all".to_string(), job_line("ok", "")];
    std::fs::write(&requests, lines.join("\n") + "\n").unwrap();
    let out = cli()
        .args([
            "serve",
            "--requests",
            requests.to_str().unwrap(),
            "--spool",
            base.join("spool").to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(4), "partial failure exit code");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("job ok: completed"), "{stdout}");
    assert!(stderr.contains("not a job request"), "{stderr}");
    assert!(stderr.contains("duplicate job id"), "{stderr}");
    assert!(stderr.contains("2 rejected"), "{stderr}");
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn serve_requires_spool_dir() {
    let out = cli().args(["serve"]).output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--spool"));
}
