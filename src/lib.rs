//! # evogame — massively parallel evolutionary game dynamics
//!
//! A from-scratch Rust reproduction of *"Massively Parallel Model of
//! Evolutionary Game Dynamics"* (Randles et al., SC 2012): Iterated
//! Prisoner's Dilemma with memory-*n* strategies (up to memory-six, 2^4096
//! pure strategies), evolved over Strategy Sets by a Nature Agent through
//! Fermi pairwise-comparison learning and mutation, with shared-memory
//! (rayon) and simulated-distributed execution plus a calibrated
//! performance model reproducing the paper's Blue Gene scaling results.
//!
//! This crate is a facade re-exporting the workspace's libraries:
//!
//! - [`ipd`] — game substrate: payoffs, memory-*n* states, strategies,
//!   the iterated game engine, tournaments.
//! - [`engine`] (crate `evo-core`) — the population engine: SSets, Nature
//!   Agent, Fermi rule, deterministic parallel generations.
//! - [`cluster`] — virtual message-passing cluster, collectives, torus
//!   topology, distributed engine, Blue Gene performance model.
//! - [`analysis`] — k-means strategy clustering, population statistics,
//!   Fig 2-style heatmaps.
//! - [`obs`] — observability: always-on event counters, opt-in span
//!   timings, and the JSON run manifest (contract in
//!   `docs/OBSERVABILITY.md`). Enabling it never changes simulation
//!   results.
//!
//! # Quickstart
//!
//! ```
//! use evogame::prelude::*;
//!
//! // Evolve 32 SSets of memory-one strategies for 500 generations.
//! let params = Params {
//!     mem_steps: 1,
//!     num_ssets: 32,
//!     generations: 500,
//!     seed: 42,
//!     ..Params::default()
//! };
//! let mut population = Population::new(params).unwrap();
//! let stats = population.run_to_end();
//! assert_eq!(stats.generations, 500);
//! println!("adoptions: {}, mutations: {}", stats.adoptions, stats.mutations);
//! ```
//!
//! See `examples/` for runnable scenarios (WSLS emergence, Axelrod
//! tournaments, memory-six populations, scaling studies) and
//! `crates/bench/src/bin/` for the regenerators of every table and figure
//! in the paper's evaluation.

#![forbid(unsafe_code)]

pub use analysis;
pub use cluster;
pub use evo_core as engine;
pub use ipd;
pub use obs;
pub use svc;

/// The most commonly used items across all workspace crates.
pub mod prelude {
    pub use analysis::prelude::*;
    pub use cluster::prelude::*;
    pub use evo_core::prelude::*;
    pub use ipd::prelude::*;
}
