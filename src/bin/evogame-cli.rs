//! `evogame-cli` — drive the library from the command line.
//!
//! ```text
//! evogame-cli run         --ssets 64 --generations 5000 [--mem 1] [--mixed]
//!                         [--seed S] [--pc-rate 0.1] [--mu 0.05] [--beta 1]
//!                         [--noise 0] [--rule pc|moran|best] [--on-demand]
//!                         [--sample-every N] [--heatmap] [--records F.jsonl]
//!                         [--manifest-out run.json]
//! evogame-cli tournament  [--mem 2] [--noise 0.0] [--reps 5] [--rounds 200]
//! evogame-cli predict     --procs 262144 [--ssets 4194304] [--mem 6]
//!                         [--generations 1000] [--profile bgp|bgl]
//! evogame-cli distributed --ranks 4 --ssets 16 --generations 200 [...]
//!                         [--rule pc|moran|best] [--every-generation]
//!                         [--manifest-out run.json]
//!                         [--kill-rank R --kill-at G] [--recv-timeout-ms MS]
//! evogame-cli spatial     --width 32 --height 32 --generations 100
//!                         [--temptation 1.85] [--update best|fermi]
//!                         [--neighborhood moore8|vn4] [--init single|random:P]
//!                         [--ranks N] [--records F.jsonl] [...]
//! evogame-cli fixate      --replicates 64 [--resident ALLC] [--mutant ALLD]
//!                         [--ssets 16] [--generations 10000] [--rule moran]
//!                         [--ranks N] [--matrix] [--records F.jsonl] [...]
//! evogame-cli serve       --spool DIR [--requests FILE.jsonl]
//!                         [--workers N] [--queue-depth N]
//! ```
//!
//! Every subcommand prints human-readable output; `run` can also emit the
//! sampled trajectory as CSV. `--manifest-out` additionally enables the
//! observability timing layer and writes the machine-readable JSON run
//! manifest described in `docs/OBSERVABILITY.md`.
//!
//! Both engines accept `--checkpoint-out` / `--checkpoint-every` /
//! `--resume` (docs/FAULT_TOLERANCE.md); checkpoints are backend-neutral,
//! and resuming is bit-identical to never having stopped. The distributed
//! engine additionally accepts deterministic fault-injection flags; an
//! injected failure ends the run with exit code 3 and, when
//! `--checkpoint-out` is given, a restartable checkpoint. Both engines
//! print a final `state digest` line to stderr so scripts can compare
//! outcomes across backends and across interrupted-vs-straight runs.

#![forbid(unsafe_code)]

use evogame::analysis::heatmap::{render_ascii, HeatmapOptions};
use evogame::analysis::timeseries::Trajectory;
use evogame::cluster::dist::fixation::{run_fixation_distributed, FixationDistConfig};
use evogame::cluster::dist::{run_distributed, DistConfig, DistError};
use evogame::cluster::faults::RankKill;
use evogame::engine::params::UpdateRule;
use evogame::engine::record::{state_digest, Checkpoint};
use evogame::svc::{JobRequest, JobStatus, Server, ServerConfig, Spool};
use evogame::ipd::classic;
use evogame::ipd::tournament::{Entrant, RoundRobin};
use evogame::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::process::ExitCode;

/// Minimal flag parser: `--key value` pairs plus boolean `--key` switches.
struct Args {
    rest: Vec<String>,
}

impl Args {
    fn new(raw: &[String]) -> Self {
        Args { rest: raw.to_vec() }
    }

    fn flag(&self, name: &str) -> bool {
        self.rest.iter().any(|a| a == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.rest
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.rest.get(i + 1))
            .map(String::as_str)
    }

    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for {name}")),
        }
    }
}

fn build_params(args: &Args) -> Result<Params, String> {
    let mut p = Params {
        mem_steps: args.parse("--mem", 1usize)?,
        num_ssets: args.parse("--ssets", 64usize)?,
        generations: args.parse("--generations", 1_000u64)?,
        seed: args.parse("--seed", 0u64)?,
        pc_rate: args.parse("--pc-rate", 0.10f64)?,
        mutation_rate: args.parse("--mu", 0.05f64)?,
        beta: args.parse("--beta", 1.0f64)?,
        ..Params::default()
    };
    p.game.rounds = args.parse("--rounds", 200u32)?;
    p.game.noise = args.parse("--noise", 0.0f64)?;
    if args.flag("--mixed") {
        p.kind = StrategyKind::Mixed;
    }
    p.rule = match args.value("--rule").unwrap_or("pc") {
        "pc" => UpdateRule::PairwiseComparison,
        "moran" => UpdateRule::Moran,
        "best" => UpdateRule::ImitateBest,
        other => return Err(format!("unknown rule {other:?} (pc|moran|best)")),
    };
    p.validate().map_err(|e| e.to_string())?;
    Ok(p)
}

/// Write `manifest` as pretty JSON to `path`.
fn write_manifest(path: &str, manifest: &evogame::obs::RunManifest) -> Result<(), String> {
    std::fs::write(path, manifest.to_json()).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("wrote run manifest to {path}");
    Ok(())
}

/// Write a restartable checkpoint as JSON to `path`.
fn write_checkpoint(path: &str, cp: &Checkpoint) -> Result<(), String> {
    let json = serde_json::to_string(cp).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    evogame::obs::counters().add_checkpoint_written();
    eprintln!("wrote checkpoint (generation {}) to {path}", cp.generation);
    Ok(())
}

/// Read a checkpoint previously written by [`write_checkpoint`].
fn read_checkpoint(path: &str) -> Result<Checkpoint, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: not a checkpoint: {e}"))
}

fn cmd_run(args: &Args) -> Result<ExitCode, String> {
    let manifest_out = args.value("--manifest-out").map(str::to_string);
    if manifest_out.is_some() {
        // Timing layer on: spans and per-generation wall times. Counters
        // are always on; this cannot change the trajectory.
        evogame::obs::set_enabled(true);
    }
    let checkpoint_out = args.value("--checkpoint-out").map(str::to_string);
    let checkpoint_every: Option<u64> = match args.value("--checkpoint-every") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("invalid value {v:?} for --checkpoint-every"))?,
        ),
        None => None,
    };
    if checkpoint_every.is_some() && checkpoint_out.is_none() {
        return Err("--checkpoint-every needs --checkpoint-out FILE".into());
    }
    let mut pop = match args.value("--resume") {
        // A resumed run is driven by the checkpoint's own params (they
        // carry the seed and generation target); parameter flags are
        // ignored. Streams are generation-keyed, so the continuation is
        // bit-identical to never having stopped.
        Some(path) => Population::restore(read_checkpoint(path)?).map_err(|e| e.to_string())?,
        None => Population::new(build_params(args)?).map_err(|e| e.to_string())?,
    };
    if args.flag("--on-demand") {
        pop.fitness_policy = FitnessPolicy::OnDemand;
    }
    // Performance knobs (docs/PERFORMANCE.md). `--dedup` and
    // `--no-payoff-cache` are cost-only: trajectories are bit-identical
    // either way. `--expected-fitness` selects the exact Markov fast path —
    // identical dynamics for pure noiseless populations, a documented
    // variance-free ablation for stochastic ones.
    if args.flag("--dedup") {
        pop.dedup = true;
    }
    if args.flag("--no-payoff-cache") {
        pop.use_payoff_cache = false;
    }
    if args.flag("--expected-fitness") {
        pop.expected_fitness = true;
    }
    let start = pop.generation();
    let total = pop.params().generations;
    let every = args.parse("--sample-every", ((total - start) / 10).max(1))?;
    let target = (pop.space().mem_steps() == 1).then(|| (vec![1.0, 0.0, 0.0, 1.0], 0.499));
    let mut traj = match &target {
        Some((t, tol)) => Trajectory::with_target(t.clone(), *tol),
        None => Trajectory::new(),
    };
    // Stream every generation record to a JSONL file (the Nature Agent's
    // file-I/O role) while sampling the trajectory.
    let mut writer = match args.value("--records") {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            Some((
                path.to_string(),
                evogame::engine::record::RecordWriter::new(file),
            ))
        }
        None => None,
    };
    let t0 = std::time::Instant::now();
    traj.observe(&pop);
    for g in start..total {
        let rec = pop.step();
        if let Some((_, w)) = &mut writer {
            w.write_generation(&rec)
                .map_err(|e| format!("writing records: {e}"))?;
        }
        if (g + 1 - start) % every == 0 || g + 1 == total {
            traj.observe(&pop);
        }
        if let (Some(n), Some(path)) = (checkpoint_every, checkpoint_out.as_deref()) {
            if n > 0 && (g + 1) % n == 0 {
                write_checkpoint(path, &pop.checkpoint())?;
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    if let Some((path, w)) = writer {
        let lines = w.lines();
        w.finish().map_err(|e| format!("flushing records: {e}"))?;
        eprintln!("wrote {lines} generation records to {path}");
    }

    print!("{}", traj.to_csv());
    let stats = pop.stats();
    eprintln!(
        "\n{} generations in {elapsed:.2}s | PC events {} | adoptions {} | mutations {} | \
         games {}",
        stats.generations, stats.pc_events, stats.adoptions, stats.mutations, stats.games_played
    );
    eprintln!(
        "state digest: {:016x}",
        state_digest(&pop.assignments(), &pop.snapshot().features)
    );
    if args.flag("--heatmap") {
        eprintln!("\nfinal population (clustered):");
        eprint!("{}", render_ascii(&pop.snapshot(), &HeatmapOptions::default()));
    }
    if let Some(path) = checkpoint_out.as_deref() {
        // Always leave the final state on disk, whatever interval (if any)
        // the periodic writes used.
        write_checkpoint(path, &pop.checkpoint())?;
    }
    if let Some(path) = manifest_out {
        write_manifest(&path, &pop.manifest(elapsed))?;
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_tournament(args: &Args) -> Result<(), String> {
    let mem = args.parse("--mem", 2usize)?;
    let space = StateSpace::new(mem).map_err(|e| e.to_string())?;
    let cfg = GameConfig {
        rounds: args.parse("--rounds", 200u32)?,
        noise: args.parse("--noise", 0.0f64)?,
        ..GameConfig::default()
    };
    let reps = args.parse("--reps", 5u32)?;
    let mut entrants: Vec<Entrant> = classic::roster(&space)
        .into_iter()
        .map(|(n, s)| Entrant {
            name: n.into(),
            strategy: Strategy::Pure(s),
        })
        .collect();
    if mem >= 1 {
        entrants.push(Entrant {
            name: "GTFT".into(),
            strategy: Strategy::Mixed(classic::gtft(&space, &cfg.payoff)),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(args.parse("--seed", 0u64)?);
    let result = RoundRobin::new(space, cfg).with_repetitions(reps).run(&entrants, &mut rng);
    print!("{}", result.render());
    println!("winner: {}", result.winner());
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    let procs: u64 = args.parse("--procs", 262_144u64)?;
    let profile = match args.value("--profile").unwrap_or("bgp") {
        "bgp" => MachineProfile::bluegene_p(),
        "bgl" => MachineProfile::bluegene_l(),
        other => return Err(format!("unknown profile {other:?} (bgp|bgl)")),
    };
    let w = Workload {
        num_ssets: args.parse("--ssets", 4_194_304u64)?,
        mem_steps: args.parse("--mem", 6usize)?,
        generations: args.parse("--generations", 1_000u64)?,
        pc_rate: args.parse("--pc-rate", 0.01f64)?,
        mutation_rate: args.parse("--mu", 0.05f64)?,
        policy: if args.flag("--every-generation") {
            FitnessPolicy::EveryGeneration
        } else {
            FitnessPolicy::OnDemand
        },
    };
    let model = PerfModel::new(profile);
    let b = model.breakdown(&w, procs);
    println!("profile:  {}", model.profile.name);
    println!(
        "workload: {} SSets, memory-{}, {} generations, {:.0e} games/generation",
        w.num_ssets,
        w.mem_steps,
        w.generations,
        w.games_per_generation()
    );
    println!("procs:    {procs}");
    println!("predicted total:   {:.2} s", b.total);
    println!("  compute/gen:     {:.3} ms", b.compute * 1e3);
    println!("  comm/gen:        {:.3} ms", b.comm * 1e3);
    println!("  mapping penalty: {:.2}x", b.penalty);
    let base = args.parse("--base", 1_024u64)?;
    println!(
        "efficiency vs {base} procs: {:.1}%",
        model.efficiency(&w, base, procs) * 100.0
    );
    Ok(())
}

fn cmd_distributed(args: &Args) -> Result<ExitCode, String> {
    let ranks = args.parse("--ranks", 4usize)?;
    if ranks < 2 {
        return Err("--ranks must be ≥ 2 (Nature Agent + compute)".into());
    }
    let manifest_out = args.value("--manifest-out").map(str::to_string);
    if manifest_out.is_some() {
        evogame::obs::set_enabled(true);
    }
    let checkpoint_out = args.value("--checkpoint-out").map(str::to_string);
    // Same validation as `run`: an interval with nowhere to write is a
    // usage error, not a silent no-op (tests/cli.rs pins both subcommands
    // to the identical message).
    if args.value("--checkpoint-every").is_some() && checkpoint_out.is_none() {
        return Err("--checkpoint-every needs --checkpoint-out FILE".into());
    }
    let policy = if args.flag("--every-generation") {
        FitnessPolicy::EveryGeneration
    } else {
        FitnessPolicy::OnDemand
    };
    let mut cfg = match args.value("--resume") {
        Some(path) => {
            // The checkpoint's params drive the resumed run; parameter
            // flags are ignored (same contract as `run --resume`).
            let cp = read_checkpoint(path)?;
            let mut c = DistConfig::new(cp.params.clone(), ranks, policy);
            c.resume = Some(cp);
            c
        }
        None => DistConfig::new(build_params(args)?, ranks, policy),
    };
    cfg.checkpoint_every = match args.value("--checkpoint-every") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("invalid value {v:?} for --checkpoint-every"))?,
        ),
        // `--checkpoint-out` alone still wants the final state: the full
        // run length is an interval that fires exactly once, at the end.
        None => checkpoint_out.as_ref().map(|_| cfg.params.generations),
    };

    // Deterministic fault injection (docs/FAULT_TOLERANCE.md).
    if let Some(r) = args.value("--kill-rank") {
        let rank: usize = r
            .parse()
            .map_err(|_| format!("invalid value {r:?} for --kill-rank"))?;
        let generation = args.parse("--kill-at", 0u64)?;
        cfg.faults.kills.push(RankKill { rank, generation });
    }
    if let Some(ms) = args.value("--recv-timeout-ms") {
        cfg.faults.recv_timeout_ms = Some(
            ms.parse()
                .map_err(|_| format!("invalid value {ms:?} for --recv-timeout-ms"))?,
        );
    }
    if args.flag("--no-payoff-cache") {
        cfg.disable_payoff_cache = true;
    }

    let baseline = evogame::obs::counters().snapshot();
    let (seed, generations) = (cfg.params.seed, cfg.params.generations);
    let params_value = {
        use serde::Serialize;
        cfg.params.to_value()
    };
    let t0 = std::time::Instant::now();
    match run_distributed(&cfg) {
        Ok(out) => {
            println!(
                "distributed run on {ranks} ranks: {} generations in {:.2}s",
                out.stats.generations,
                t0.elapsed().as_secs_f64()
            );
            println!(
                "PC events {} | adoptions {} | mutations {} | games {} | messages {}",
                out.stats.pc_events,
                out.stats.adoptions,
                out.stats.mutations,
                out.stats.games_played,
                out.messages_sent
            );
            eprintln!(
                "state digest: {:016x}",
                state_digest(&out.assignments, &out.features)
            );
            if let (Some(path), Some(cp)) = (checkpoint_out.as_deref(), &out.checkpoint) {
                write_checkpoint(path, cp)?;
            }
            if let Some(path) = manifest_out {
                let manifest = evogame::obs::RunManifest::capture(
                    params_value,
                    seed,
                    ranks,
                    generations,
                    t0.elapsed().as_secs_f64(),
                    &baseline,
                    &out.generation_ns,
                );
                write_manifest(&path, &manifest)?;
            }
            Ok(ExitCode::SUCCESS)
        }
        Err(DistError::Degraded(d)) => {
            eprintln!(
                "run degraded after {} generations (dead ranks {:?}): {}",
                d.completed_generations, d.dead_ranks, d.reason
            );
            match (checkpoint_out.as_deref(), &d.checkpoint) {
                (Some(path), Some(cp)) => {
                    write_checkpoint(path, cp)?;
                    eprintln!("restart with: evogame-cli distributed --resume {path}");
                }
                (None, Some(_)) => {
                    eprintln!("hint: add --checkpoint-out FILE to save the restart checkpoint");
                }
                _ => {}
            }
            // A degraded run still reports its telemetry — the fault
            // counters are exactly what an operator wants from it.
            if let Some(path) = manifest_out {
                let manifest = evogame::obs::RunManifest::capture(
                    params_value,
                    seed,
                    ranks,
                    d.completed_generations,
                    t0.elapsed().as_secs_f64(),
                    &baseline,
                    &[],
                );
                write_manifest(&path, &manifest)?;
            }
            // Exit code 3 distinguishes a clean degraded run (typed,
            // restartable) from usage or parameter errors (1).
            Ok(ExitCode::from(3))
        }
        Err(e) => Err(e.to_string()),
    }
}

/// Spatial lattice parameters from flags (docs/GRAPH.md). The payoff
/// matrix is the weak dilemma of the spatial-games literature: R = 1,
/// S = P = 0, T = `--temptation` (default 1.85).
fn build_spatial_params(args: &Args) -> Result<SpatialParams, String> {
    let mut p = SpatialParams {
        width: args.parse("--width", 32usize)?,
        height: args.parse("--height", 32usize)?,
        mem_steps: args.parse("--mem", 0usize)?,
        generations: args.parse("--generations", 100u64)?,
        seed: args.parse("--seed", 0u64)?,
        ..SpatialParams::default()
    };
    p.game.rounds = args.parse("--rounds", 1u32)?;
    p.game.noise = args.parse("--noise", 0.0f64)?;
    let b = args.parse("--temptation", 1.85f64)?;
    p.game.payoff = evogame::ipd::payoff::PayoffMatrix::from_rstp(1.0, 0.0, b, 0.0);
    p.update = match args.value("--update").unwrap_or("best") {
        "best" => SpatialUpdate::BestNeighbor,
        "fermi" => SpatialUpdate::Fermi {
            beta: args.parse("--beta", 1.0f64)?,
        },
        other => return Err(format!("unknown update {other:?} (best|fermi)")),
    };
    p.neighborhood = match args.value("--neighborhood").unwrap_or("moore8") {
        "moore8" => Neighborhood::Moore8,
        "vn4" => Neighborhood::VonNeumann4,
        other => return Err(format!("unknown neighborhood {other:?} (moore8|vn4)")),
    };
    if args.flag("--no-self") {
        p.include_self = false;
    }
    p.validate()?;
    Ok(p)
}

/// `--init single` (lone central defector, the paper-classic seeding) or
/// `--init random:P` (each cell defects with probability P).
fn parse_init(args: &Args) -> Result<InitPattern, String> {
    match args.value("--init").unwrap_or("single") {
        "single" => Ok(InitPattern::SingleDefector),
        s => match s.strip_prefix("random:") {
            Some(p) => Ok(InitPattern::RandomDefectors(
                p.parse()
                    .map_err(|_| format!("invalid probability {p:?} in --init"))?,
            )),
            None => Err(format!("unknown init {s:?} (single|random:P)")),
        },
    }
}

/// Write a restartable spatial checkpoint as JSON to `path`.
fn write_spatial_checkpoint(path: &str, cp: &SpatialCheckpoint) -> Result<(), String> {
    let json = serde_json::to_string(cp).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    evogame::obs::counters().add_checkpoint_written();
    eprintln!("wrote checkpoint (generation {}) to {path}", cp.generation);
    Ok(())
}

/// Read a checkpoint previously written by [`write_spatial_checkpoint`].
fn read_spatial_checkpoint(path: &str) -> Result<SpatialCheckpoint, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: not a spatial checkpoint: {e}"))
}

/// `spatial`: games on a lattice (docs/GRAPH.md). Without `--ranks` the
/// shared-memory [`SpatialPopulation`] runs; with `--ranks N` the same
/// trajectory runs rank-sharded over contiguous row partitions — bit for
/// bit the same records, grid, and state digest.
fn cmd_spatial(args: &Args) -> Result<ExitCode, String> {
    let manifest_out = args.value("--manifest-out").map(str::to_string);
    if manifest_out.is_some() {
        evogame::obs::set_enabled(true);
    }
    let checkpoint_out = args.value("--checkpoint-out").map(str::to_string);
    if args.value("--checkpoint-every").is_some() && checkpoint_out.is_none() {
        return Err("--checkpoint-every needs --checkpoint-out FILE".into());
    }
    let checkpoint_every: Option<u64> = match args.value("--checkpoint-every") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("invalid value {v:?} for --checkpoint-every"))?,
        ),
        None => None,
    };
    let resume: Option<SpatialCheckpoint> = match args.value("--resume") {
        Some(path) => Some(read_spatial_checkpoint(path)?),
        None => None,
    };
    // The checkpoint's params drive a resumed run (same contract as the
    // other subcommands); parameter flags are ignored.
    let (params, init) = match &resume {
        Some(cp) => (cp.params.clone(), InitPattern::SingleDefector),
        None => {
            let p = build_spatial_params(args)?;
            let init = parse_init(args)?;
            init.validate(&p)?;
            (p, init)
        }
    };
    let baseline = evogame::obs::counters().snapshot();
    let params_value = {
        use serde::Serialize;
        params.to_value()
    };
    let (seed, generations) = (params.seed, params.generations);
    let mut writer = match args.value("--records") {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            Some((
                path.to_string(),
                evogame::engine::record::RecordWriter::new(file),
            ))
        }
        None => None,
    };
    let t0 = std::time::Instant::now();

    if let Some(ranks) = args.value("--ranks") {
        // Distributed: rank 0 coordinates, ranks 1.. own row blocks.
        let ranks: usize = ranks
            .parse()
            .map_err(|_| format!("invalid value {ranks:?} for --ranks"))?;
        let mut cfg = SpatialDistConfig::new(params, init, ranks);
        cfg.resume = resume;
        cfg.checkpoint_every = match checkpoint_every {
            Some(n) => Some(n),
            // `--checkpoint-out` alone still wants the final state.
            None => checkpoint_out.as_ref().map(|_| generations),
        };
        if let Some(r) = args.value("--kill-rank") {
            let rank: usize = r
                .parse()
                .map_err(|_| format!("invalid value {r:?} for --kill-rank"))?;
            let generation = args.parse("--kill-at", 0u64)?;
            cfg.faults.kills.push(RankKill { rank, generation });
        }
        if let Some(ms) = args.value("--recv-timeout-ms") {
            cfg.faults.recv_timeout_ms = Some(
                ms.parse()
                    .map_err(|_| format!("invalid value {ms:?} for --recv-timeout-ms"))?,
            );
        }
        if args.flag("--no-payoff-cache") {
            cfg.disable_payoff_cache = true;
        }
        return match run_spatial_distributed(&cfg) {
            Ok(out) => {
                if let Some((_, w)) = &mut writer {
                    for rec in &out.records {
                        w.write_generation(rec)
                            .map_err(|e| format!("writing records: {e}"))?;
                    }
                }
                if let Some((path, w)) = writer {
                    let lines = w.lines();
                    w.finish().map_err(|e| format!("flushing records: {e}"))?;
                    eprintln!("wrote {lines} generation records to {path}");
                }
                let cells = out.grid.len();
                let coop = out
                    .features
                    .iter()
                    .filter(|f| f.iter().all(|&p| p == 1.0))
                    .count();
                println!(
                    "spatial run on {ranks} ranks: {} generations in {:.2}s",
                    out.stats.generations,
                    t0.elapsed().as_secs_f64()
                );
                println!(
                    "cooperators {coop}/{cells} | adoptions {} | games {} | messages {}",
                    out.stats.adoptions, out.stats.games_played, out.messages_sent
                );
                eprintln!(
                    "state digest: {:016x}",
                    state_digest(&out.grid, &out.features)
                );
                if let (Some(path), Some(cp)) = (checkpoint_out.as_deref(), &out.checkpoint) {
                    write_spatial_checkpoint(path, cp)?;
                }
                if let Some(path) = manifest_out {
                    let manifest = evogame::obs::RunManifest::capture(
                        params_value,
                        seed,
                        ranks,
                        generations,
                        t0.elapsed().as_secs_f64(),
                        &baseline,
                        &[],
                    );
                    write_manifest(&path, &manifest)?;
                }
                Ok(ExitCode::SUCCESS)
            }
            Err(DistError::SpatialDegraded(d)) => {
                eprintln!(
                    "spatial run degraded after {} generations (dead ranks {:?}): {}",
                    d.completed_generations, d.dead_ranks, d.reason
                );
                match (checkpoint_out.as_deref(), &d.checkpoint) {
                    (Some(path), Some(cp)) => {
                        write_spatial_checkpoint(path, cp)?;
                        eprintln!("restart with: evogame-cli spatial --resume {path}");
                    }
                    (None, Some(_)) => {
                        eprintln!(
                            "hint: add --checkpoint-out FILE to save the restart checkpoint"
                        );
                    }
                    _ => {}
                }
                Ok(ExitCode::from(3))
            }
            Err(e) => Err(e.to_string()),
        };
    }

    // Shared-memory backend.
    let mut pop = match resume {
        Some(cp) => SpatialPopulation::restore(cp)?,
        None => SpatialPopulation::new(params, init),
    };
    if args.flag("--no-payoff-cache") {
        pop.use_payoff_cache = false;
    }
    let start = pop.generation();
    let every = args.parse("--sample-every", ((generations - start) / 10).max(1))?;
    println!("generation,cooperator_fraction,mean_fitness,distinct");
    let emit = |pop: &SpatialPopulation, mean: f64| {
        println!(
            "{},{:.6},{mean:.6},{}",
            pop.generation(),
            pop.cooperator_fraction(),
            pop.snapshot().distinct_strategies()
        );
    };
    for g in start..generations {
        let rec = pop.step();
        if let Some((_, w)) = &mut writer {
            w.write_generation(&rec)
                .map_err(|e| format!("writing records: {e}"))?;
        }
        if (g + 1 - start) % every == 0 || g + 1 == generations {
            emit(&pop, rec.mean_fitness.unwrap_or(f64::NAN));
        }
        if let (Some(n), Some(path)) = (checkpoint_every, checkpoint_out.as_deref()) {
            if n > 0 && (g + 1) % n == 0 {
                write_spatial_checkpoint(path, &pop.checkpoint())?;
            }
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    if let Some((path, w)) = writer {
        let lines = w.lines();
        w.finish().map_err(|e| format!("flushing records: {e}"))?;
        eprintln!("wrote {lines} generation records to {path}");
    }
    let stats = pop.stats();
    eprintln!(
        "\n{} generations in {elapsed:.2}s | adoptions {} | games {}",
        stats.generations, stats.adoptions, stats.games_played
    );
    let snap = pop.snapshot();
    eprintln!(
        "state digest: {:016x}",
        state_digest(&snap.assignments, &snap.features)
    );
    if args.flag("--render") {
        eprintln!("\nfinal grid (C = cooperate, D = defect):");
        eprint!("{}", pop.render());
    }
    if let Some(path) = checkpoint_out.as_deref() {
        write_spatial_checkpoint(path, &pop.checkpoint())?;
    }
    if let Some(path) = manifest_out {
        let manifest = evogame::obs::RunManifest::capture(
            params_value,
            seed,
            1,
            generations,
            elapsed,
            &baseline,
            &[],
        );
        write_manifest(&path, &manifest)?;
    }
    Ok(ExitCode::SUCCESS)
}

/// Fixation spec from flags (docs/FIXATION.md). `--mu` is rejected:
/// absorption needs mutation off, so the spec always carries
/// `mutation_rate = 0`.
fn build_fixation_spec(args: &Args) -> Result<FixationSpec, String> {
    if args.value("--mu").is_some() {
        return Err(
            "fixate forces --mu 0 (mutation re-introduces lost lineages, \
             so absorption would never be reached)"
                .into(),
        );
    }
    let mut params = Params {
        mem_steps: args.parse("--mem", 1usize)?,
        num_ssets: args.parse("--ssets", 16usize)?,
        generations: args.parse("--generations", 10_000u64)?,
        seed: args.parse("--seed", 0u64)?,
        pc_rate: args.parse("--pc-rate", 1.0f64)?,
        mutation_rate: 0.0,
        beta: args.parse("--beta", 1.0f64)?,
        ..Params::default()
    };
    params.game.rounds = args.parse("--rounds", 200u32)?;
    params.game.noise = args.parse("--noise", 0.0f64)?;
    params.rule = match args.value("--rule").unwrap_or("moran") {
        "pc" => UpdateRule::PairwiseComparison,
        "moran" => UpdateRule::Moran,
        "best" => UpdateRule::ImitateBest,
        other => return Err(format!("unknown rule {other:?} (pc|moran|best)")),
    };
    let space = params.validate().map_err(|e| e.to_string())?;
    let resident = roster_strategy(&space, args.value("--resident").unwrap_or("ALLC"))?;
    let mutant = roster_strategy(&space, args.value("--mutant").unwrap_or("ALLD"))?;
    let spec = FixationSpec {
        params,
        resident,
        mutant,
        replicates: args.parse("--replicates", 64u32)?,
    };
    spec.validate().map_err(|e| e.to_string())?;
    Ok(spec)
}

/// Look a strategy up by its classic-roster name (case-insensitive).
fn roster_strategy(space: &StateSpace, name: &str) -> Result<Strategy, String> {
    let roster = classic::roster(space);
    roster
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, s)| Strategy::Pure(s.clone()))
        .ok_or_else(|| {
            let names: Vec<&str> = roster.iter().map(|(n, _)| *n).collect();
            format!(
                "unknown strategy {name:?} for memory {} (one of {})",
                space.mem_steps(),
                names.join("|")
            )
        })
}

/// Write a restartable fixation checkpoint as JSON to `path`.
fn write_fixation_checkpoint(path: &str, cp: &FixationCheckpoint) -> Result<(), String> {
    let json = serde_json::to_string(cp).map_err(|e| e.to_string())?;
    std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
    evogame::obs::counters().add_checkpoint_written();
    eprintln!(
        "wrote checkpoint ({}/{} replicates) to {path}",
        cp.completed.len(),
        cp.spec.replicates
    );
    Ok(())
}

/// Read a checkpoint previously written by [`write_fixation_checkpoint`].
fn read_fixation_checkpoint(path: &str) -> Result<FixationCheckpoint, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("{path}: not a fixation checkpoint: {e}"))
}

/// `fixate --matrix`: the round-robin tournament over every pure
/// memory-`m` strategy (docs/FIXATION.md), printed as the pairwise
/// fixation-probability matrix.
fn cmd_fixate_matrix(spec: FixationSpec) -> Result<ExitCode, String> {
    let t0 = std::time::Instant::now();
    let tournament = FixationTournament {
        params: spec.params,
        replicates: spec.replicates,
    };
    let matrix = tournament.run().map_err(|e| e.to_string())?;
    let n = matrix.len();
    let codes: Vec<String> = matrix
        .strategies
        .iter()
        .map(evogame::ipd::codec::encode)
        .collect();
    println!(
        "fixation matrix: {n} strategies x {n} strategies, {} replicates per pair, {:.2}s",
        matrix.replicates,
        t0.elapsed().as_secs_f64()
    );
    println!("rows = resident, columns = invading mutant; entry = P(fixation)");
    let head: Vec<String> = codes.iter().map(|c| format!("{c:>8}")).collect();
    println!("{:>8} {}", "", head.join(" "));
    for (i, code) in codes.iter().enumerate() {
        let row: Vec<String> = (0..n)
            .map(|j| format!("{:>8.4}", matrix.probability(i, j)))
            .collect();
        println!("{code:>8} {}", row.join(" "));
    }
    eprintln!(
        "state digest: {:016x}",
        state_digest(&matrix.probabilities, &matrix.mean_times)
    );
    Ok(ExitCode::SUCCESS)
}

/// `fixate`: the fixation-probability workload (docs/FIXATION.md). Seeds
/// one mutant into a resident population and runs independent replicates
/// to absorption; without `--ranks` the shared-memory [`FixationBatch`]
/// runs, with `--ranks N` the same replicates run sharded across compute
/// ranks — bit for bit the same counts, records, and state digest.
fn cmd_fixate(args: &Args) -> Result<ExitCode, String> {
    let manifest_out = args.value("--manifest-out").map(str::to_string);
    if manifest_out.is_some() {
        evogame::obs::set_enabled(true);
    }
    let checkpoint_out = args.value("--checkpoint-out").map(str::to_string);
    if args.value("--checkpoint-every").is_some() && checkpoint_out.is_none() {
        return Err("--checkpoint-every needs --checkpoint-out FILE".into());
    }
    let checkpoint_every: Option<u32> = match args.value("--checkpoint-every") {
        Some(v) => Some(
            v.parse()
                .map_err(|_| format!("invalid value {v:?} for --checkpoint-every"))?,
        ),
        None => None,
    };
    let resume: Option<FixationCheckpoint> = match args.value("--resume") {
        Some(path) => Some(read_fixation_checkpoint(path)?),
        None => None,
    };
    // The checkpoint's spec drives a resumed run (same contract as the
    // other subcommands); parameter flags are ignored.
    let spec = match &resume {
        Some(cp) => cp.spec.clone(),
        None => build_fixation_spec(args)?,
    };
    if args.flag("--matrix") {
        return cmd_fixate_matrix(spec);
    }
    let baseline = evogame::obs::counters().snapshot();
    let params_value = {
        use serde::Serialize;
        spec.params.to_value()
    };
    let (seed, replicates) = (spec.params.seed, spec.replicates);
    let mut writer = match args.value("--records") {
        Some(path) => {
            let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
            Some((
                path.to_string(),
                evogame::engine::record::RecordWriter::new(file),
            ))
        }
        None => None,
    };
    let t0 = std::time::Instant::now();

    let summarize = |out: &FixationOutcome, backend: &str, elapsed: f64| {
        println!(
            "fixation batch ({backend}): {} replicates in {elapsed:.2}s",
            out.results.len()
        );
        println!(
            "fixed {} | extinct {} | censored {} | fixation probability {:.4} | \
             mean absorption time {:.1}",
            out.fixed(),
            out.extinct(),
            out.censored(),
            out.fixation_probability(),
            out.mean_absorption_time()
        );
        eprintln!("state digest: {:016x}", out.digest());
    };
    let write_records = |writer: &mut Option<(
        String,
        evogame::engine::record::RecordWriter<std::fs::File>,
    )>,
                         out: &FixationOutcome|
     -> Result<(), String> {
        if let Some((_, w)) = writer {
            for rec in out.records() {
                w.write_generation(&rec)
                    .map_err(|e| format!("writing records: {e}"))?;
            }
        }
        if let Some((path, w)) = writer.take() {
            let lines = w.lines();
            w.finish().map_err(|e| format!("flushing records: {e}"))?;
            eprintln!("wrote {lines} replicate records to {path}");
        }
        Ok(())
    };

    if let Some(ranks) = args.value("--ranks") {
        // Distributed: rank 0 coordinates, ranks 1.. own replicate blocks.
        let ranks: usize = ranks
            .parse()
            .map_err(|_| format!("invalid value {ranks:?} for --ranks"))?;
        let mut cfg = FixationDistConfig::new(spec.clone(), ranks);
        cfg.resume = resume;
        cfg.checkpoint_every = checkpoint_every;
        if let Some(r) = args.value("--kill-rank") {
            let rank: usize = r
                .parse()
                .map_err(|_| format!("invalid value {r:?} for --kill-rank"))?;
            let generation = args.parse("--kill-at", 0u64)?;
            cfg.faults.kills.push(RankKill { rank, generation });
        }
        if let Some(ms) = args.value("--recv-timeout-ms") {
            cfg.faults.recv_timeout_ms = Some(
                ms.parse()
                    .map_err(|_| format!("invalid value {ms:?} for --recv-timeout-ms"))?,
            );
        }
        if args.flag("--no-payoff-cache") {
            cfg.disable_payoff_cache = true;
        }
        return match run_fixation_distributed(&cfg) {
            Ok(out) => {
                write_records(&mut writer, &out.outcome)?;
                summarize(&out.outcome, &format!("{ranks} ranks"), t0.elapsed().as_secs_f64());
                eprintln!("messages {}", out.messages_sent);
                if let Some(path) = checkpoint_out.as_deref() {
                    // The finished batch is its own (complete) checkpoint.
                    let mut book = FixationBatch::new(spec).map_err(|e| e.to_string())?;
                    for r in &out.outcome.results {
                        book.record(*r);
                    }
                    write_fixation_checkpoint(path, &book.checkpoint())?;
                }
                if let Some(path) = manifest_out {
                    let manifest = evogame::obs::RunManifest::capture(
                        params_value,
                        seed,
                        ranks,
                        u64::from(replicates),
                        t0.elapsed().as_secs_f64(),
                        &baseline,
                        &[],
                    );
                    write_manifest(&path, &manifest)?;
                }
                Ok(ExitCode::SUCCESS)
            }
            Err(DistError::FixationDegraded(d)) => {
                eprintln!(
                    "fixation batch degraded after {} replicates (dead ranks {:?}): {}",
                    d.completed_replicates, d.dead_ranks, d.reason
                );
                // Unlike the generation-synchronous engines the degraded
                // checkpoint is always present — completed replicates are
                // self-consistent whatever the fault.
                match checkpoint_out.as_deref() {
                    Some(path) => {
                        write_fixation_checkpoint(path, &d.checkpoint)?;
                        eprintln!("restart with: evogame-cli fixate --resume {path}");
                    }
                    None => {
                        eprintln!("hint: add --checkpoint-out FILE to save the restart checkpoint");
                    }
                }
                Ok(ExitCode::from(3))
            }
            Err(e) => Err(e.to_string()),
        };
    }

    // Shared-memory backend.
    let mut batch = match resume {
        Some(cp) => FixationBatch::resume(cp).map_err(|e| e.to_string())?,
        None => FixationBatch::new(spec).map_err(|e| e.to_string())?,
    };
    match checkpoint_every {
        Some(n) if n > 0 => {
            // Checkpointed runs go replicate by replicate so the snapshot
            // cadence is exact; the stitched outcome is bit-identical to
            // the rayon path (each replicate is a pure function of its
            // index).
            let path = checkpoint_out.as_deref().expect("checked above");
            let mut fresh = 0u32;
            while batch.run_step().is_some() {
                fresh += 1;
                if fresh.is_multiple_of(n) {
                    write_fixation_checkpoint(path, &batch.checkpoint())?;
                }
            }
        }
        _ => {
            batch.run();
        }
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let out = batch.outcome();
    write_records(&mut writer, &out)?;
    summarize(&out, "shared memory", elapsed);
    if let Some(path) = checkpoint_out.as_deref() {
        write_fixation_checkpoint(path, &batch.checkpoint())?;
    }
    if let Some(path) = manifest_out {
        let manifest = evogame::obs::RunManifest::capture(
            params_value,
            seed,
            1,
            u64::from(replicates),
            elapsed,
            &baseline,
            &[],
        );
        write_manifest(&path, &manifest)?;
    }
    Ok(ExitCode::SUCCESS)
}

/// `serve`: the simulation-as-a-service front end (docs/SERVICE.md).
///
/// Reads line-delimited JSON [`JobRequest`]s from `--requests FILE` or
/// stdin, drives them through the `svc` job server, and spools each
/// job's status, streamed records, checkpoints, and final receipt under
/// `--spool DIR/<job id>/`. No network anywhere: submission is a file or
/// a pipe, results are files.
///
/// Exit code: 0 when every submitted job completed; 4 when any job was
/// rejected or failed (the per-job lines on stdout say which).
fn cmd_serve(args: &Args) -> Result<ExitCode, String> {
    let Some(spool_dir) = args.value("--spool") else {
        return Err("serve needs --spool DIR (per-job artefact directory)".into());
    };
    let workers = args.parse("--workers", 2usize)?.max(1);
    let queue_depth = args.parse("--queue-depth", 64usize)?;
    let text = match args.value("--requests") {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?,
        None => {
            use std::io::Read as _;
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .map_err(|e| format!("reading stdin: {e}"))?;
            buf
        }
    };
    let spool = Spool::new(spool_dir).map_err(|e| format!("{spool_dir}: {e}"))?;
    let baseline = evogame::obs::counters().snapshot();
    let server = Server::with_spool(
        ServerConfig {
            workers,
            queue_depth,
        },
        Some(spool.clone()),
    );

    let mut submitted: Vec<String> = Vec::new();
    let mut rejected = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match serde_json::from_str::<JobRequest>(line) {
            Ok(req) => {
                let id = req.id.clone();
                match server.submit(req) {
                    Ok(()) => submitted.push(id),
                    Err(e) => {
                        rejected += 1;
                        eprintln!("job {id}: rejected: {e}");
                    }
                }
            }
            Err(e) => {
                // Malformed lines count as rejections too — nothing is
                // dropped silently.
                rejected += 1;
                evogame::obs::counters().add_job_rejected();
                eprintln!("line {}: not a job request: {e}", lineno + 1);
            }
        }
    }
    server.wait_idle();

    let (mut completed, mut failed) = (0usize, 0usize);
    for id in &submitted {
        match server.status(id) {
            Some(JobStatus::Completed {
                state_digest,
                retries,
            }) => {
                completed += 1;
                println!("job {id}: completed | state digest {state_digest} | retries {retries}");
            }
            Some(JobStatus::Failed { reason, retries }) => {
                failed += 1;
                println!("job {id}: failed | {reason} | retries {retries}");
            }
            other => {
                failed += 1;
                println!("job {id}: not settled ({other:?})");
            }
        }
    }
    server.shutdown();
    let delta = evogame::obs::counters().snapshot().delta_since(&baseline);
    eprintln!(
        "serve: {completed} completed, {failed} failed, {rejected} rejected | counters: \
         accepted {} rejected {} completed {} retried {}",
        delta.jobs_accepted, delta.jobs_rejected, delta.jobs_completed, delta.jobs_retried
    );
    eprintln!("receipts in {}", spool.root().display());
    if failed == 0 && rejected == 0 {
        Ok(ExitCode::SUCCESS)
    } else {
        // 4 = batch finished but not everything succeeded (3 is taken by
        // `distributed`'s clean-degraded-run code).
        Ok(ExitCode::from(4))
    }
}

fn cmd_classify(args: &Args) -> Result<(), String> {
    let Some(code) = args.rest.first() else {
        return Err("usage: evogame-cli classify <m<n>:...> (see ipd::codec)".into());
    };
    let strategy = evogame::ipd::codec::decode(code).map_err(|e| e.to_string())?;
    let space = *strategy.space();
    let fv = strategy.feature_vector();
    let (name, distance) = evogame::analysis::classify::nearest_named(&fv, &space);
    println!("input:    {code}");
    println!("memory:   {} ({} states)", space.mem_steps(), space.num_states());
    if space.num_states() <= 16 {
        println!("coop probabilities: {fv:?}");
    }
    println!("nearest classic: {name} (rms distance {distance:.3})");
    if distance < 1e-9 {
        println!("-> exactly {name}");
    }
    Ok(())
}

const USAGE: &str = "usage: evogame-cli <run|tournament|predict|distributed|spatial|fixate|serve|classify> [flags]
  run          evolve a population, print the sampled trajectory as CSV
  tournament   Axelrod round robin over the classic roster
  predict      Blue Gene-scale runtime/efficiency from the perf model
  distributed  run the virtual-cluster engine (any --rule; same trajectory
               as `run`, bit for bit — docs/ENGINE_CORE.md)
  spatial      games on a lattice, shared-memory or (--ranks N) rank-sharded
               over row partitions — same trajectory bit for bit
               (docs/GRAPH.md)
  fixate       fixation probability: seed one mutant into a resident
               population, run replicates to absorption, shared-memory or
               (--ranks N) replicate-sharded — same counts, records, and
               digest bit for bit (docs/FIXATION.md)
  serve        job server: line-delimited JSON job requests from stdin or
               --requests FILE, receipts spooled per job (docs/SERVICE.md)
  classify     name a strategy given its compact code (e.g. 'classify m1:6')
run flags:     --ssets N --generations G --mem M --seed S --pc-rate R --mu R
               --beta B --noise E --rounds N --mixed --rule pc|moran|best
               --on-demand --sample-every N --heatmap --records FILE.jsonl
               --manifest-out FILE.json   (JSON run manifest, see
                                           docs/OBSERVABILITY.md; also
                                           accepted by `distributed`)
performance (docs/PERFORMANCE.md; all bit-identical for the paper's
deterministic configurations):
               --dedup              play each distinct strategy pair once
               --no-payoff-cache    disable the cross-generation payoff
                                    memo-cache (also for `distributed`)
               --expected-fitness   exact Markov fitness (`run` only): the
                                    analytic fast path instead of round
                                    simulation
checkpointing (both `run` and `distributed` — docs/FAULT_TOLERANCE.md):
               --checkpoint-out FILE.json  write a restartable checkpoint
               --checkpoint-every N        refresh it every N generations
               --resume FILE.json          continue a checkpointed run
                                           (bit-identical to never stopping)
spatial flags (docs/GRAPH.md; checkpointing and fault injection as below):
               --width W --height H        torus size (default 32x32)
               --temptation B              T of the weak dilemma (1.85)
               --update best|fermi --beta B  update rule (best)
               --neighborhood moore8|vn4   interaction graph (moore8)
               --no-self                   exclude own payoff from 'best'
               --init single|random:P      seeding (single central defector)
               --mem M --rounds N --noise E  iterated-game knobs
               --ranks N                   run rank-sharded (row partitions)
               --render                    ASCII grid to stderr at the end
fixate flags (docs/FIXATION.md; checkpointing and fault injection as
below; --mu is rejected — absorption needs mutation off):
               --replicates R              independent replicates (64)
               --resident NAME             roster strategy all SSets start
                                           with (ALLC)
               --mutant NAME               roster strategy seeded into one
                                           SSet (ALLD)
               --generations G             per-replicate absorption cap
                                           (10000; overruns are censored)
               --rule pc|moran|best        update rule (moran)
               --pc-rate R                 update-event rate (1.0)
               --matrix                    round-robin over every pure
                                           memory-m strategy instead;
                                           prints the fixation matrix
               --ranks N                   shard replicates across ranks
fault injection (`distributed`, `spatial --ranks`, and `fixate --ranks`;
exit 3 = clean degraded run):
               --kill-rank R --kill-at G   kill rank R at generation G
               --recv-timeout-ms MS        receive deadline for survivors
serve flags (docs/SERVICE.md; exit code 4 = some job failed/rejected):
               --spool DIR          required; <DIR>/<job id>/ gets status,
                                    records.jsonl, checkpoint, receipt
               --requests FILE      JSONL job requests (default: stdin)
               --workers N          worker threads (default 2)
               --queue-depth N      admission bound (default 64)
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = Args::new(&raw[1..]);
    let result: Result<ExitCode, String> = match cmd.as_str() {
        "run" => cmd_run(&args),
        "tournament" => cmd_tournament(&args).map(|()| ExitCode::SUCCESS),
        "predict" => cmd_predict(&args).map(|()| ExitCode::SUCCESS),
        "distributed" => cmd_distributed(&args),
        "spatial" => cmd_spatial(&args),
        "fixate" => cmd_fixate(&args),
        "serve" => cmd_serve(&args),
        "classify" => cmd_classify(&args).map(|()| ExitCode::SUCCESS),
        "-h" | "--help" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
