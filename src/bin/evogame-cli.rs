//! `evogame-cli` — drive the library from the command line.
//!
//! ```text
//! evogame-cli run         --ssets 64 --generations 5000 [--mem 1] [--mixed]
//!                         [--seed S] [--pc-rate 0.1] [--mu 0.05] [--beta 1]
//!                         [--noise 0] [--rule pc|moran|best] [--on-demand]
//!                         [--sample-every N] [--heatmap] [--records F.jsonl]
//!                         [--manifest-out run.json]
//! evogame-cli tournament  [--mem 2] [--noise 0.0] [--reps 5] [--rounds 200]
//! evogame-cli predict     --procs 262144 [--ssets 4194304] [--mem 6]
//!                         [--generations 1000] [--profile bgp|bgl]
//! evogame-cli distributed --ranks 4 --ssets 16 --generations 200 [...]
//!                         [--rule pc|moran|best] [--every-generation]
//!                         [--manifest-out run.json]
//! ```
//!
//! Every subcommand prints human-readable output; `run` can also emit the
//! sampled trajectory as CSV. `--manifest-out` additionally enables the
//! observability timing layer and writes the machine-readable JSON run
//! manifest described in `docs/OBSERVABILITY.md`.

#![forbid(unsafe_code)]

use evogame::analysis::heatmap::{render_ascii, HeatmapOptions};
use evogame::analysis::timeseries::record_run;
use evogame::cluster::dist::{run_distributed, DistConfig};
use evogame::engine::params::UpdateRule;
use evogame::ipd::classic;
use evogame::ipd::tournament::{Entrant, RoundRobin};
use evogame::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::process::ExitCode;

/// Minimal flag parser: `--key value` pairs plus boolean `--key` switches.
struct Args {
    rest: Vec<String>,
}

impl Args {
    fn new(raw: &[String]) -> Self {
        Args { rest: raw.to_vec() }
    }

    fn flag(&self, name: &str) -> bool {
        self.rest.iter().any(|a| a == name)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.rest
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.rest.get(i + 1))
            .map(String::as_str)
    }

    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value {v:?} for {name}")),
        }
    }
}

fn build_params(args: &Args) -> Result<Params, String> {
    let mut p = Params {
        mem_steps: args.parse("--mem", 1usize)?,
        num_ssets: args.parse("--ssets", 64usize)?,
        generations: args.parse("--generations", 1_000u64)?,
        seed: args.parse("--seed", 0u64)?,
        pc_rate: args.parse("--pc-rate", 0.10f64)?,
        mutation_rate: args.parse("--mu", 0.05f64)?,
        beta: args.parse("--beta", 1.0f64)?,
        ..Params::default()
    };
    p.game.rounds = args.parse("--rounds", 200u32)?;
    p.game.noise = args.parse("--noise", 0.0f64)?;
    if args.flag("--mixed") {
        p.kind = StrategyKind::Mixed;
    }
    p.rule = match args.value("--rule").unwrap_or("pc") {
        "pc" => UpdateRule::PairwiseComparison,
        "moran" => UpdateRule::Moran,
        "best" => UpdateRule::ImitateBest,
        other => return Err(format!("unknown rule {other:?} (pc|moran|best)")),
    };
    p.validate().map_err(|e| e.to_string())?;
    Ok(p)
}

/// Write `manifest` as pretty JSON to `path`.
fn write_manifest(path: &str, manifest: &evogame::obs::RunManifest) -> Result<(), String> {
    std::fs::write(path, manifest.to_json()).map_err(|e| format!("{path}: {e}"))?;
    eprintln!("wrote run manifest to {path}");
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let params = build_params(args)?;
    let generations = params.generations;
    let manifest_out = args.value("--manifest-out").map(str::to_string);
    if manifest_out.is_some() {
        // Timing layer on: spans and per-generation wall times. Counters
        // are always on; this cannot change the trajectory.
        evogame::obs::set_enabled(true);
    }
    let mut pop = Population::new(params).map_err(|e| e.to_string())?;
    if args.flag("--on-demand") {
        pop.fitness_policy = FitnessPolicy::OnDemand;
    }
    let every = args.parse("--sample-every", (generations / 10).max(1))?;
    let target = (pop.space().mem_steps() == 1).then(|| (vec![1.0, 0.0, 0.0, 1.0], 0.499));
    let t0 = std::time::Instant::now();
    let (traj, records_written) = if let Some(path) = args.value("--records") {
        // Stream every generation record to a JSONL file (the Nature
        // Agent's file-I/O role) while sampling the trajectory.
        let file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        let mut writer = evogame::engine::record::RecordWriter::new(file);
        let mut traj = match &target {
            Some((t, tol)) => evogame::analysis::timeseries::Trajectory::with_target(
                t.clone(),
                *tol,
            ),
            None => evogame::analysis::timeseries::Trajectory::new(),
        };
        traj.observe(&pop);
        for g in 0..generations {
            let rec = pop.step();
            writer
                .write_generation(&rec)
                .map_err(|e| format!("writing records: {e}"))?;
            if (g + 1) % every == 0 || g + 1 == generations {
                traj.observe(&pop);
            }
        }
        let lines = writer.lines();
        writer.finish().map_err(|e| format!("flushing records: {e}"))?;
        (traj, Some((path.to_string(), lines)))
    } else {
        (record_run(&mut pop, generations, every, target), None)
    };
    let elapsed = t0.elapsed().as_secs_f64();
    if let Some((path, lines)) = records_written {
        eprintln!("wrote {lines} generation records to {path}");
    }

    print!("{}", traj.to_csv());
    let stats = pop.stats();
    eprintln!(
        "\n{} generations in {elapsed:.2}s | PC events {} | adoptions {} | mutations {} | \
         games {}",
        stats.generations, stats.pc_events, stats.adoptions, stats.mutations, stats.games_played
    );
    if args.flag("--heatmap") {
        eprintln!("\nfinal population (clustered):");
        eprint!("{}", render_ascii(&pop.snapshot(), &HeatmapOptions::default()));
    }
    if let Some(path) = manifest_out {
        write_manifest(&path, &pop.manifest(elapsed))?;
    }
    Ok(())
}

fn cmd_tournament(args: &Args) -> Result<(), String> {
    let mem = args.parse("--mem", 2usize)?;
    let space = StateSpace::new(mem).map_err(|e| e.to_string())?;
    let cfg = GameConfig {
        rounds: args.parse("--rounds", 200u32)?,
        noise: args.parse("--noise", 0.0f64)?,
        ..GameConfig::default()
    };
    let reps = args.parse("--reps", 5u32)?;
    let mut entrants: Vec<Entrant> = classic::roster(&space)
        .into_iter()
        .map(|(n, s)| Entrant {
            name: n.into(),
            strategy: Strategy::Pure(s),
        })
        .collect();
    if mem >= 1 {
        entrants.push(Entrant {
            name: "GTFT".into(),
            strategy: Strategy::Mixed(classic::gtft(&space, &cfg.payoff)),
        });
    }
    let mut rng = ChaCha8Rng::seed_from_u64(args.parse("--seed", 0u64)?);
    let result = RoundRobin::new(space, cfg).with_repetitions(reps).run(&entrants, &mut rng);
    print!("{}", result.render());
    println!("winner: {}", result.winner());
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    let procs: u64 = args.parse("--procs", 262_144u64)?;
    let profile = match args.value("--profile").unwrap_or("bgp") {
        "bgp" => MachineProfile::bluegene_p(),
        "bgl" => MachineProfile::bluegene_l(),
        other => return Err(format!("unknown profile {other:?} (bgp|bgl)")),
    };
    let w = Workload {
        num_ssets: args.parse("--ssets", 4_194_304u64)?,
        mem_steps: args.parse("--mem", 6usize)?,
        generations: args.parse("--generations", 1_000u64)?,
        pc_rate: args.parse("--pc-rate", 0.01f64)?,
        mutation_rate: args.parse("--mu", 0.05f64)?,
        policy: if args.flag("--every-generation") {
            FitnessPolicy::EveryGeneration
        } else {
            FitnessPolicy::OnDemand
        },
    };
    let model = PerfModel::new(profile);
    let b = model.breakdown(&w, procs);
    println!("profile:  {}", model.profile.name);
    println!(
        "workload: {} SSets, memory-{}, {} generations, {:.0e} games/generation",
        w.num_ssets,
        w.mem_steps,
        w.generations,
        w.games_per_generation()
    );
    println!("procs:    {procs}");
    println!("predicted total:   {:.2} s", b.total);
    println!("  compute/gen:     {:.3} ms", b.compute * 1e3);
    println!("  comm/gen:        {:.3} ms", b.comm * 1e3);
    println!("  mapping penalty: {:.2}x", b.penalty);
    let base = args.parse("--base", 1_024u64)?;
    println!(
        "efficiency vs {base} procs: {:.1}%",
        model.efficiency(&w, base, procs) * 100.0
    );
    Ok(())
}

fn cmd_distributed(args: &Args) -> Result<(), String> {
    let params = build_params(args)?;
    let ranks = args.parse("--ranks", 4usize)?;
    if ranks < 2 {
        return Err("--ranks must be ≥ 2 (Nature Agent + compute)".into());
    }
    let manifest_out = args.value("--manifest-out").map(str::to_string);
    if manifest_out.is_some() {
        evogame::obs::set_enabled(true);
    }
    let baseline = evogame::obs::counters().snapshot();
    let (seed, generations) = (params.seed, params.generations);
    let params_value = {
        use serde::Serialize;
        params.to_value()
    };
    let t0 = std::time::Instant::now();
    let out = run_distributed(&DistConfig {
        params,
        ranks,
        policy: if args.flag("--every-generation") {
            FitnessPolicy::EveryGeneration
        } else {
            FitnessPolicy::OnDemand
        },
    });
    println!(
        "distributed run on {ranks} ranks: {} generations in {:.2}s",
        out.stats.generations,
        t0.elapsed().as_secs_f64()
    );
    println!(
        "PC events {} | adoptions {} | mutations {} | games {} | messages {}",
        out.stats.pc_events,
        out.stats.adoptions,
        out.stats.mutations,
        out.stats.games_played,
        out.messages_sent
    );
    if let Some(path) = manifest_out {
        let manifest = evogame::obs::RunManifest::capture(
            params_value,
            seed,
            ranks,
            generations,
            t0.elapsed().as_secs_f64(),
            &baseline,
            &out.generation_ns,
        );
        write_manifest(&path, &manifest)?;
    }
    Ok(())
}

fn cmd_classify(args: &Args) -> Result<(), String> {
    let Some(code) = args.rest.first() else {
        return Err("usage: evogame-cli classify <m<n>:...> (see ipd::codec)".into());
    };
    let strategy = evogame::ipd::codec::decode(code).map_err(|e| e.to_string())?;
    let space = *strategy.space();
    let fv = strategy.feature_vector();
    let (name, distance) = evogame::analysis::classify::nearest_named(&fv, &space);
    println!("input:    {code}");
    println!("memory:   {} ({} states)", space.mem_steps(), space.num_states());
    if space.num_states() <= 16 {
        println!("coop probabilities: {fv:?}");
    }
    println!("nearest classic: {name} (rms distance {distance:.3})");
    if distance < 1e-9 {
        println!("-> exactly {name}");
    }
    Ok(())
}

const USAGE: &str = "usage: evogame-cli <run|tournament|predict|distributed|classify> [flags]
  run          evolve a population, print the sampled trajectory as CSV
  tournament   Axelrod round robin over the classic roster
  predict      Blue Gene-scale runtime/efficiency from the perf model
  distributed  run the virtual-cluster engine (any --rule; same trajectory
               as `run`, bit for bit — docs/ENGINE_CORE.md)
  classify     name a strategy given its compact code (e.g. 'classify m1:6')
run flags:     --ssets N --generations G --mem M --seed S --pc-rate R --mu R
               --beta B --noise E --rounds N --mixed --rule pc|moran|best
               --on-demand --sample-every N --heatmap --records FILE.jsonl
               --manifest-out FILE.json   (JSON run manifest, see
                                           docs/OBSERVABILITY.md; also
                                           accepted by `distributed`)
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = Args::new(&raw[1..]);
    let result = match cmd.as_str() {
        "run" => cmd_run(&args),
        "tournament" => cmd_tournament(&args),
        "predict" => cmd_predict(&args),
        "distributed" => cmd_distributed(&args),
        "classify" => cmd_classify(&args),
        "-h" | "--help" | "help" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
