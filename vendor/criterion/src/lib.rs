//! Offline vendored `criterion` subset: a minimal wall-clock benchmark
//! harness with the upstream API shape (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `Bencher::iter`).
//!
//! Statistics are deliberately simple — warm-up, then a timed loop
//! reporting mean ns/iter to stdout. When invoked by `cargo test` (which
//! passes `--test` to `harness = false` bench binaries) every benchmark
//! body runs exactly once so the tier-1 suite stays fast.
//!
//! Passing `--save-json <path>` (or `--save-json=<path>`) to a bench
//! binary additionally writes every result as a machine-readable JSON
//! baseline — upstream's `--save-baseline`, minus the comparison engine:
//! `{"benchmarks": [{"group", "id", "ns_per_iter", "iterations"}, …]}`.
//! The file is written when the `Criterion` value drops, after all groups
//! have run; write failures are reported to stderr, never panic.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` for benches that import it from
/// criterion rather than std.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// One completed measurement, retained for the optional JSON baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Group name as passed to [`Criterion::benchmark_group`].
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration (0.0 in test mode).
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iterations: u64,
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
    save_json: Option<PathBuf>,
    results: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench binaries once with
        // `--test`; `cargo bench` passes `--bench`. Any `--test` argument
        // switches to single-iteration smoke mode.
        let args: Vec<String> = std::env::args().collect();
        let test_mode = args.iter().any(|a| a == "--test");
        let mut save_json = None;
        for (i, a) in args.iter().enumerate() {
            if a == "--save-json" {
                save_json = args.get(i + 1).map(PathBuf::from);
            } else if let Some(path) = a.strip_prefix("--save-json=") {
                save_json = Some(PathBuf::from(path));
            }
        }
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            test_mode,
            save_json,
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Set the target number of measured iterations (lower bound).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the warm-up duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Write results to `path` as JSON when this value drops (the
    /// programmatic equivalent of the `--save-json` CLI flag).
    pub fn save_json(mut self, path: impl Into<PathBuf>) -> Self {
        self.save_json = Some(path.into());
        self
    }

    /// Results recorded so far (one entry per completed benchmark).
    pub fn results(&self) -> &[BenchRecord] {
        &self.results
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: None,
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(results: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"group\": \"{}\", \"id\": \"{}\", \"ns_per_iter\": {}, \"iterations\": {}}}{sep}\n",
            json_escape(&r.group),
            json_escape(&r.id),
            r.ns_per_iter,
            r.iterations,
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

impl Drop for Criterion {
    fn drop(&mut self) {
        let Some(path) = self.save_json.take() else {
            return;
        };
        match std::fs::write(&path, render_json(&self.results)) {
            Ok(()) => println!(
                "criterion: saved {} benchmark result(s) to {}",
                self.results.len(),
                path.display()
            ),
            Err(e) => eprintln!("criterion: could not write {}: {e}", path.display()),
        }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a displayable parameter value.
    pub fn from_parameter<D: Display>(param: D) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }

    /// Build a `name/param` id.
    pub fn new<D: Display>(name: &str, param: D) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the minimum iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            test_mode: self.criterion.test_mode,
            result: None,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.id);
        if let Some((elapsed, n)) = bencher.result {
            self.criterion.results.push(BenchRecord {
                group: self.name.clone(),
                id: id.id,
                ns_per_iter: elapsed.as_nanos() as f64 / n as f64,
                iterations: n,
            });
        }
        self
    }

    /// Run one benchmark parameterised by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (upstream renders summaries here; we report per
    /// benchmark, so this is a no-op hook).
    pub fn finish(&mut self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time repeated calls of `f`, retaining the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std_black_box(f());
            self.result = Some((Duration::ZERO, 1));
            return;
        }
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            std_black_box(f());
        }
        let mut iters: u64 = 0;
        let timer = Instant::now();
        while timer.elapsed() < self.measurement || iters < self.sample_size as u64 {
            std_black_box(f());
            iters += 1;
        }
        self.result = Some((timer.elapsed(), iters));
    }

    fn report(&self, group: &str, id: &str) {
        match self.result {
            Some((_, n)) if self.test_mode => {
                println!("test-mode {group}/{id}: ran {n} iteration");
            }
            Some((elapsed, n)) => {
                let ns = elapsed.as_nanos() as f64 / n as f64;
                println!("bench {group}/{id}: {ns:.1} ns/iter ({n} iterations)");
            }
            None => println!("bench {group}/{id}: no measurement recorded"),
        }
    }
}

/// Define a benchmark group function from config + target functions.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_target(c: &mut Criterion) {
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        group.bench_function("add", |b| b.iter(|| black_box(1u64 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn harness_runs_end_to_end() {
        let mut c = Criterion {
            sample_size: 2,
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(2),
            test_mode: false,
            save_json: None,
            results: Vec::new(),
        };
        tiny_target(&mut c);
        assert_eq!(c.results().len(), 2);
        assert!(c.results()[0].iterations >= 2);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 10,
            warm_up: Duration::from_secs(100), // must be skipped
            measurement: Duration::from_secs(100),
            test_mode: true,
            save_json: None,
            results: Vec::new(),
        };
        let mut group = c.benchmark_group("t");
        let mut calls = 0u32;
        group.bench_function("once", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn save_json_writes_baseline_on_drop() {
        let path = std::env::temp_dir().join(format!(
            "criterion_save_json_{}.json",
            std::process::id()
        ));
        {
            let mut c = Criterion {
                sample_size: 10,
                warm_up: Duration::ZERO,
                measurement: Duration::ZERO,
                test_mode: true,
                save_json: Some(path.clone()),
                results: Vec::new(),
            };
            tiny_target(&mut c);
        } // drop writes the file
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(json.contains("\"benchmarks\""));
        assert!(json.contains("\"group\": \"t\""));
        assert!(json.contains("\"id\": \"add\""));
        assert!(json.contains("\"iterations\": 1"));
    }

    #[test]
    fn json_escaping_and_shape() {
        let rendered = render_json(&[BenchRecord {
            group: "a\"b\\c".into(),
            id: "nl\n".into(),
            ns_per_iter: 1.5,
            iterations: 3,
        }]);
        assert!(rendered.contains(r#""group": "a\"b\\c""#));
        assert!(rendered.contains(r#""id": "nl\u000a""#));
        assert!(rendered.contains("\"ns_per_iter\": 1.5"));
        assert!(rendered.ends_with("  ]\n}\n"));
    }
}
