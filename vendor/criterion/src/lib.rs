//! Offline vendored `criterion` subset: a minimal wall-clock benchmark
//! harness with the upstream API shape (`criterion_group!`,
//! `criterion_main!`, benchmark groups, `Bencher::iter`).
//!
//! Statistics are deliberately simple — warm-up, then a timed loop
//! reporting mean ns/iter to stdout. When invoked by `cargo test` (which
//! passes `--test` to `harness = false` bench binaries) every benchmark
//! body runs exactly once so the tier-1 suite stays fast.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` for benches that import it from
/// criterion rather than std.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level harness configuration and entry point.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs harness=false bench binaries once with
        // `--test`; `cargo bench` passes `--bench`. Any `--test` argument
        // switches to single-iteration smoke mode.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            test_mode,
        }
    }
}

impl Criterion {
    /// Set the target number of measured iterations (lower bound).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the warm-up duration before timing starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement window per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: None,
        }
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a displayable parameter value.
    pub fn from_parameter<D: Display>(param: D) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }

    /// Build a `name/param` id.
    pub fn new<D: Display>(name: &str, param: D) -> Self {
        BenchmarkId {
            id: format!("{name}/{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the minimum iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            sample_size: self.sample_size.unwrap_or(self.criterion.sample_size),
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            test_mode: self.criterion.test_mode,
            result: None,
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.id);
        self
    }

    /// Run one benchmark parameterised by an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Close the group (upstream renders summaries here; we report per
    /// benchmark, so this is a no-op hook).
    pub fn finish(&mut self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Time repeated calls of `f`, retaining the mean.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std_black_box(f());
            self.result = Some((Duration::ZERO, 1));
            return;
        }
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up {
            std_black_box(f());
        }
        let mut iters: u64 = 0;
        let timer = Instant::now();
        while timer.elapsed() < self.measurement || iters < self.sample_size as u64 {
            std_black_box(f());
            iters += 1;
        }
        self.result = Some((timer.elapsed(), iters));
    }

    fn report(&self, group: &str, id: &str) {
        match self.result {
            Some((_, n)) if self.test_mode => {
                println!("test-mode {group}/{id}: ran {n} iteration");
            }
            Some((elapsed, n)) => {
                let ns = elapsed.as_nanos() as f64 / n as f64;
                println!("bench {group}/{id}: {ns:.1} ns/iter ({n} iterations)");
            }
            None => println!("bench {group}/{id}: no measurement recorded"),
        }
    }
}

/// Define a benchmark group function from config + target functions.
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_target(c: &mut Criterion) {
        let mut group = c.benchmark_group("t");
        group.sample_size(2);
        group.bench_function("add", |b| b.iter(|| black_box(1u64 + 1)));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }

    #[test]
    fn harness_runs_end_to_end() {
        let mut c = Criterion {
            sample_size: 2,
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(2),
            test_mode: false,
        };
        tiny_target(&mut c);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            sample_size: 10,
            warm_up: Duration::from_secs(100), // must be skipped
            measurement: Duration::from_secs(100),
            test_mode: true,
        };
        let mut group = c.benchmark_group("t");
        let mut calls = 0u32;
        group.bench_function("once", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        group.finish();
        assert_eq!(calls, 1);
    }
}
