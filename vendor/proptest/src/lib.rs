//! Offline vendored `proptest` subset.
//!
//! Provides the slice of the proptest API this workspace's property tests
//! use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, [`Just`],
//! [`prop_oneof!`], [`any`], range and tuple strategies, and
//! `prop::collection::vec`. Case generation is deterministic — derived from
//! the test's module path, name, and case index — so failures reproduce
//! across runs. There is **no shrinking**: a failing case panics with its
//! case index instead of a minimised input.
//!
//! Case count defaults to 32 and can be overridden per block with
//! `#![proptest_config(ProptestConfig::with_cases(n))]` or globally with
//! the `PROPTEST_CASES` environment variable (which wins over both).

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

// ------------------------------------------------------------------ RNG

/// Deterministic splitmix64-based generator used for case generation.
pub struct TestRng {
    state: u64,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl TestRng {
    /// Build the generator for one `(test, case)` pair. Same pair, same
    /// stream — failures are replayable by rerunning the test binary.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        let mut state = h ^ ((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Warm up so nearby case indices decorrelate.
        let _ = splitmix64(&mut state);
        TestRng { state }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift reduction; bias is < 2^-64 per draw, irrelevant
        // for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ------------------------------------------------------------- Strategy

/// A recipe for generating values of one type.
///
/// Vendored subset: generation only, no shrink trees.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }
}

impl<V> Strategy for Box<dyn Strategy<Value = V>> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Box a strategy for storage in heterogeneous collections
/// (used by [`prop_oneof!`]).
pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
where
    S: Strategy + 'static,
{
    Box::new(s)
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice between boxed strategies; built by [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Wrap a non-empty set of alternatives.
    pub fn new(options: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

// Integer range strategies.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128 - self.start as u128) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128 - lo as u128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let x = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                // Guard against rounding up to the excluded endpoint.
                if x >= self.end { self.start } else { x }
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

// Tuple strategies: a tuple of strategies yields a tuple of values.
macro_rules! impl_tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A.0);
impl_tuple_strategy!(A.0, B.1);
impl_tuple_strategy!(A.0, B.1, C.2);
impl_tuple_strategy!(A.0, B.1, C.2, D.3);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8);
impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7, I.8, J.9);

// ------------------------------------------------------------ Arbitrary

/// Types with a canonical full-domain strategy, reachable via [`any`].
pub trait Arbitrary: Sized {
    /// The strategy [`any`] returns for this type.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for a primitive; see [`any`].
pub struct AnyPrim<T>(PhantomData<T>);

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrim<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrim<$t>;
            fn arbitrary() -> Self::Strategy { AnyPrim(PhantomData) }
        }
    )*};
}

impl_any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrim<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrim<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim(PhantomData)
    }
}

impl Strategy for AnyPrim<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        // Finite values only: proptest tests here do arithmetic with them.
        rng.unit_f64() * 2e6 - 1e6
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrim<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyPrim(PhantomData)
    }
}

/// The canonical strategy for `T`, e.g. `any::<u64>()`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ----------------------------------------------------------- collection

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification for [`fn@vec`]: a fixed size or a range.
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy producing `Vec`s of an element strategy's values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// --------------------------------------------------------------- config

/// Per-block configuration for [`proptest!`].
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

fn env_cases() -> Option<u32> {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
}

impl ProptestConfig {
    /// Config running `n` cases (unless `PROPTEST_CASES` overrides it).
    pub fn with_cases(n: u32) -> Self {
        ProptestConfig {
            cases: env_cases().unwrap_or(n),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig::with_cases(32)
    }
}

// --------------------------------------------------------------- macros

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = <$crate::ProptestConfig as ::std::default::Default>::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::TestRng::for_case(__path, __case);
                let ($($pat,)+) =
                    ($($crate::Strategy::generate(&($strat), &mut __rng),)+);
                // A failing prop_assert! panics; the harness reports it.
                $body
            }
        }
    )*};
}

/// Property assertion; panics (failing the case) when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Property equality assertion; panics when the sides differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Property inequality assertion; panics when the sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::boxed($s)),+])
    };
}

/// Everything tests import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };

    /// Namespace alias so `prop::collection::vec(..)` resolves as upstream.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let x = Strategy::generate(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
            let y = Strategy::generate(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&y));
            let z = Strategy::generate(&(5u16..6), &mut rng);
            assert_eq!(z, 5);
        }
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = (0u64..1000, 0.0f64..1.0).prop_map(|(a, b)| (a, b));
        let mut r1 = crate::TestRng::for_case("det", 7);
        let mut r2 = crate::TestRng::for_case("det", 7);
        assert_eq!(
            Strategy::generate(&strat, &mut r1).0,
            Strategy::generate(&strat, &mut r2).0
        );
    }

    #[test]
    fn oneof_covers_all_options() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = crate::TestRng::for_case("oneof", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro itself: patterns, collections, and assertions.
        #[test]
        fn macro_roundtrip(xs in prop::collection::vec(0u32..100, 0..16), flag in any::<bool>()) {
            prop_assert!(xs.len() < 16);
            let doubled: Vec<u32> = xs.iter().map(|&x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            let _ = flag;
        }
    }
}
