//! Offline vendored `serde_json`: JSON text over the vendored
//! [`serde::Value`] model.
//!
//! Float fidelity matters here — checkpoints assert exact equality after a
//! JSON round-trip — so finite `f64`s are written with Rust's `{:?}`
//! (shortest representation that parses back to the identical bits, always
//! keeping a `.0` on integral values) and non-finite floats become `null`,
//! matching upstream `serde_json`'s behaviour.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Error raised by JSON encoding or decoding.
///
/// Wraps either a syntax error (with byte offset) from the parser or a shape
/// error from [`serde::Deserialize`].
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn syntax(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            message: format!("{} at byte {offset}", msg.into()),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error {
            message: e.to_string(),
        }
    }
}

// ----------------------------------------------------------------- writer

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a human-readable, 2-space-indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::syntax(
                format!("expected `{}`", b as char),
                self.pos,
            ))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::syntax(format!("expected `{kw}`"), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::syntax("expected `,` or `]`", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::syntax("expected `,` or `}`", self.pos)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::syntax("unexpected token", self.pos)),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::syntax("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::syntax("truncated \\u escape", self.pos))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::syntax("bad \\u escape", self.pos))?,
                                16,
                            )
                            .map_err(|_| Error::syntax("bad \\u escape", self.pos))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::syntax("bad escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::syntax("invalid UTF-8", self.pos))?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::syntax("invalid number", start))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::syntax(format!("invalid number `{text}`"), start))
    }
}

/// Parse a JSON document into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::syntax("trailing characters", parser.pos));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_roundtrip_is_exact() {
        for x in [0.1, 1.0, -2.5e-9, f64::MAX, f64::MIN_POSITIVE, 3.3333333333333335] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{s}");
        }
    }

    #[test]
    fn integral_float_keeps_point() {
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn nonfinite_becomes_null_and_parses_as_nan() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        let back: f64 = from_str(&s).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn string_escapes_roundtrip() {
        let input = "a\"b\\c\nd\te\u{1}f — π".to_string();
        let s = to_string(&input).unwrap();
        let back: String = from_str(&s).unwrap();
        assert_eq!(input, back);
    }

    #[test]
    fn nested_value_roundtrip() {
        let v = Value::Map(vec![
            ("a".into(), Value::Seq(vec![Value::UInt(1), Value::Null])),
            ("b".into(), Value::Bool(false)),
            ("c".into(), Value::Int(-3)),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(to_string(&back).unwrap(), s);
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = Value::Map(vec![("k".into(), Value::Seq(vec![Value::UInt(7)]))]);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(to_string(&back).unwrap(), to_string(&v).unwrap());
    }
}
