//! Offline vendored ChaCha8 random number generator.
//!
//! A real ChaCha stream cipher core (IETF layout, 8 rounds, 64-bit block
//! counter) exposed through the vendored [`rand`] traits. The keystream is
//! a faithful ChaCha8 implementation, but no bit-compatibility with the
//! upstream `rand_chacha` crate is promised — the repository pins its own
//! stream outputs in `evo_core::rngstream` tests instead.

use rand::{RngCore, SeedableRng};

/// Compatibility alias for `use rand_chacha::rand_core::SeedableRng`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

const CHACHA_ROUNDS: usize = 8;

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha8 stream cipher as a deterministic RNG.
///
/// Seeded from 32 bytes of key material; the nonce is fixed at zero and the
/// 64-bit block counter advances per 16-word block, giving a 2^70-byte
/// period — far beyond any simulation's appetite.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words 0..8 of the initial state (constants and counter are
    /// reconstructed per block).
    key: [u32; 8],
    /// Block counter of the *next* block to generate.
    counter: u64,
    /// Current block's output words.
    buf: [u32; 16],
    /// Next unread index into `buf`; 16 means exhausted.
    idx: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        // "expand 32-byte k" constants.
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, (s, i)) in self.buf.iter_mut().zip(state.iter().zip(input.iter())) {
            *out = s.wrapping_add(*i);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let xs: Vec<u64> = (0..64).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn seeds_decorrelate() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chacha_rfc8439_block_function() {
        // RFC 8439 §2.3.2 test vector, adapted: with 20 rounds the
        // reference state is fixed; here we only check the 8-round core is
        // a permutation-with-feedforward that changes with the counter.
        let mut r = ChaCha8Rng::from_seed([7u8; 32]);
        let first: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| r.next_u32()).collect();
        assert_ne!(first, second, "blocks must differ as the counter advances");
    }

    #[test]
    fn mean_of_bytes_is_uniformish() {
        let mut r = ChaCha8Rng::seed_from_u64(9);
        let mean: f64 =
            (0..20_000).map(|_| r.random::<u8>() as f64).sum::<f64>() / 20_000.0;
        assert!((mean - 127.5).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn clone_continues_identically() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
