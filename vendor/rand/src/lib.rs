//! Offline vendored subset of the `rand` 0.9 API.
//!
//! This workspace builds in environments with no reachable cargo registry,
//! so the external crates it would normally pull from crates.io are
//! replaced by small local implementations under `vendor/`. This crate
//! provides the slice of the `rand` 0.9 surface the workspace actually
//! uses: [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait with
//! `random`, `random_range`, and `random_bool`.
//!
//! The uniform-range sampling uses Lemire's widening-multiply rejection
//! method, so draws are unbiased; `f64` sampling uses the standard
//! 53-bit-mantissa `[0, 1)` construction. Output is *not* bit-compatible
//! with upstream `rand` — the repository's determinism contract is defined
//! by its own pinned streams (`evo_core::rngstream`), not by upstream.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// Return the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Return the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator that can be instantiated from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// Seed type (a byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Create a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Create a generator from a `u64`, expanding it into a full seed with
    /// SplitMix64 (the same construction `rand_core` 0.9 uses).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from an `RngCore`'s raw output
/// (the `StandardUniform` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                if (<$t>::BITS as u32) <= 32 {
                    rng.next_u32() as $t
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_standard_int {
    ($($t:ty => $u:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                <$u as Standard>::draw(rng) as $t
            }
        }
    )*};
}
impl_standard_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Unbiased integer in `[0, range)` by Lemire's multiply-shift rejection.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let threshold = range.wrapping_neg() % range;
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (range as u128);
        if (m as u64) >= threshold {
            return (m >> 64) as u64;
        }
    }
}

/// A half-open or inclusive range that can be sampled for `T`.
pub trait SampleRange<T> {
    /// Sample one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(uniform_u64(rng, span) as i64)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo).wrapping_add(1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                (lo.wrapping_add(uniform_u64(rng, span) as i64)) as $t
            }
        }
    )*};
}
impl_range_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + <$t as Standard>::draw(rng) * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + <$t as Standard>::draw(rng) * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of type `T` from its standard distribution (uniform
    /// over all values for integers and `bool`; uniform in `[0, 1)` for
    /// floats).
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Sample uniformly from `range`. Panics if the range is empty.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Return `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Mirror of `rand::rngs` with only what the workspace touches.
pub mod rngs {
    /// Placeholder module: the engine constructs all generators explicitly
    /// from seeds (`rand_chacha::ChaCha8Rng`), never from OS entropy.
    pub mod mock {}
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = Counter(7);
        for _ in 0..1000 {
            let x: usize = r.random_range(3..17);
            assert!((3..17).contains(&x));
            let y: u16 = r.random_range(0..=5);
            assert!(y <= 5);
            let f: f64 = r.random_range(0.25..=0.75);
            assert!((0.25..=0.75).contains(&f));
        }
    }

    #[test]
    fn unit_interval_draws() {
        let mut r = Counter(3);
        for _ in 0..1000 {
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = Counter(1);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }
}
