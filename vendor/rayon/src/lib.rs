//! Offline vendored `rayon` subset.
//!
//! The workspace only uses the `(0..n).into_par_iter().map(f).collect()`
//! shape, so that is what this crate provides: an ordered parallel map over
//! a `Range<usize>`, executed on `std::thread::scope` worker threads with
//! contiguous chunking. Results are returned in index order, so callers see
//! output identical to a sequential map — which is exactly the
//! schedule-invariance contract the engine's tests pin down.
//!
//! Thread count comes from `RAYON_NUM_THREADS` (like upstream rayon's
//! default pool) or falls back to `std::thread::available_parallelism`.

use std::marker::PhantomData;
use std::ops::Range;

/// Resolve the worker-thread count: `RAYON_NUM_THREADS` if set and positive,
/// else the machine's available parallelism.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Everything call sites need: `use rayon::prelude::*;`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

/// Conversion into a parallel iterator (vendored subset: `Range<usize>`).
pub trait IntoParallelIterator {
    /// The parallel iterator type produced.
    type Iter;
    /// Convert into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

/// A parallel iterator over `Range<usize>`.
pub struct ParRange {
    range: Range<usize>,
}

impl ParRange {
    /// Map each index through `f` in parallel, preserving index order.
    pub fn map<T, F>(self, f: F) -> ParMap<T, F>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        ParMap {
            range: self.range,
            f,
            _out: PhantomData,
        }
    }
}

/// The pending parallel map; realised by [`ParMap::collect`].
pub struct ParMap<T, F> {
    range: Range<usize>,
    f: F,
    _out: PhantomData<T>,
}

impl<T, F> ParMap<T, F>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    /// Execute the map on worker threads and collect results in index order.
    pub fn collect<C: FromIterator<T>>(self) -> C {
        let Range { start, end } = self.range;
        let n = end.saturating_sub(start);
        let threads = current_num_threads().min(n.max(1));
        if threads <= 1 || n <= 1 {
            return (start..end).map(&self.f).collect();
        }
        let chunk = n.div_ceil(threads);
        let f = &self.f;
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let lo = start + t * chunk;
                    let hi = (lo + chunk).min(end);
                    scope.spawn(move || (lo..hi).map(f).collect::<Vec<T>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("rayon worker panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn matches_sequential_map() {
        let par: Vec<u64> = (0..1000).into_par_iter().map(|i| (i as u64) * 3).collect();
        let seq: Vec<u64> = (0..1000).map(|i| (i as u64) * 3).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_range_is_fine() {
        let par: Vec<u8> = (0..0).into_par_iter().map(|_| 1u8).collect();
        assert!(par.is_empty());
    }

    #[test]
    fn captures_environment_by_reference() {
        let weights = vec![2.0f64; 64];
        let par: Vec<f64> = (0..64).into_par_iter().map(|i| weights[i] * i as f64).collect();
        assert_eq!(par[3], 6.0);
    }
}
