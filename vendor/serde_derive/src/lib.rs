//! Offline vendored `serde_derive`: `#[derive(Serialize, Deserialize)]`
//! implemented with a dependency-free hand-rolled token parser (no `syn` /
//! `quote` available offline).
//!
//! Supported input shapes — exactly what this workspace uses:
//!
//! - structs with named fields (`#[serde(default)]` honoured per field);
//! - enums with unit variants (discriminants allowed), newtype/tuple
//!   variants, and struct variants, serialised with external tagging:
//!   `"Variant"`, `{"Variant": value}`, `{"Variant": [..]}`,
//!   `{"Variant": {..}}` — the upstream `serde` JSON representation.
//!
//! Generics, tuple structs, and other `#[serde(...)]` attributes are not
//! supported and produce a compile-time panic naming the offending type.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: name plus whether `#[serde(default)]` was present.
struct Field {
    name: String,
    has_default: bool,
}

/// One parsed enum variant.
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum Input {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<Variant> },
}

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consume a leading `#[...]` attribute run; return whether any of the
    /// consumed attributes was `#[serde(default)]`.
    fn skip_attrs(&mut self) -> bool {
        let mut serde_default = false;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next();
            // Inner attribute marker `!` never appears on fields/variants,
            // but tolerate it.
            if matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '!') {
                self.next();
            }
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(name)) = inner.first() {
                        if name.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.get(1) {
                                let has_default = args.stream().into_iter().any(|t| {
                                    matches!(&t, TokenTree::Ident(i) if i.to_string() == "default")
                                });
                                let only_default = args.stream().into_iter().all(|t| {
                                    matches!(&t, TokenTree::Ident(i) if i.to_string() == "default")
                                        || matches!(&t, TokenTree::Punct(p) if p.as_char() == ',')
                                });
                                if !only_default {
                                    panic!(
                                        "vendored serde_derive supports only #[serde(default)], got #[serde({})]",
                                        args.stream()
                                    );
                                }
                                serde_default |= has_default;
                            }
                        }
                    }
                }
                other => panic!("malformed attribute near {other:?}"),
            }
        }
        serde_default
    }

    /// Consume `pub` / `pub(...)` visibility if present.
    fn skip_vis(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self, what: &str) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected {what}, found {other:?}"),
        }
    }

    fn expect_punct(&mut self, ch: char) {
        match self.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ch => {}
            other => panic!("expected `{ch}`, found {other:?}"),
        }
    }

    /// Skip a type (or discriminant expression): everything up to a
    /// top-level `,`, tracking `<`/`>` nesting so generic-argument commas
    /// don't terminate early. Consumes the trailing comma if present.
    fn skip_until_toplevel_comma(&mut self) {
        let mut angle_depth: i64 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

/// Parse the named fields of a brace-delimited body.
fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cur = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cur.at_end() {
        let has_default = cur.skip_attrs();
        cur.skip_vis();
        let name = cur.expect_ident("field name");
        cur.expect_punct(':');
        cur.skip_until_toplevel_comma();
        fields.push(Field { name, has_default });
    }
    fields
}

/// Count the fields of a tuple variant's parenthesised body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut angle_depth: i64 = 0;
    let mut commas = 0usize;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                commas += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    commas + 1 - usize::from(trailing_comma)
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cur = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cur.at_end() {
        cur.skip_attrs();
        let name = cur.expect_ident("variant name");
        let shape = match cur.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                cur.next();
                VariantShape::Tuple(count_tuple_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                cur.next();
                VariantShape::Struct(parse_named_fields(g))
            }
            _ => VariantShape::Unit,
        };
        // Discriminant (`= 0`) and/or trailing comma.
        if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            cur.next();
            cur.skip_until_toplevel_comma();
        } else if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            cur.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn parse_input(stream: TokenStream) -> Input {
    let mut cur = Cursor::new(stream);
    cur.skip_attrs();
    cur.skip_vis();
    let kw = cur.expect_ident("`struct` or `enum`");
    let name = cur.expect_ident("type name");
    if matches!(cur.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("vendored serde_derive does not support generic type `{name}`");
    }
    let body = match cur.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!("expected braced body for `{name}` (tuple structs unsupported), found {other:?}"),
    };
    match kw.as_str() {
        "struct" => Input::Struct {
            name,
            fields: parse_named_fields(body),
        },
        "enum" => Input::Enum {
            name,
            variants: parse_variants(body),
        },
        other => panic!("cannot derive for `{other} {name}`"),
    }
}

// --------------------------------------------------------------- codegen

fn serialize_fields_expr(owner: &str, fields: &[Field], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{n}\"), ::serde::Serialize::to_value({p}{n}))",
                n = f.name,
                p = access_prefix
            )
        })
        .collect();
    let _ = owner;
    format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
}

fn deserialize_fields_expr(ty: &str, fields: &[Field], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let fallback = if f.has_default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::DeError::missing_field(\"{n}\", \"{ty}\"))",
                    n = f.name
                )
            };
            format!(
                "{n}: match {source}.get(\"{n}\") {{ \
                     ::std::option::Option::Some(x) => ::serde::Deserialize::from_value(x)?, \
                     ::std::option::Option::None => {fallback}, \
                 }}",
                n = f.name
            )
        })
        .collect();
    inits.join(", ")
}

fn derive_serialize_impl(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let body = serialize_fields_expr(name, fields, "&self.");
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Map(::std::vec![(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Serialize::to_value(f0))]),"
                        ),
                        VariantShape::Tuple(k) => {
                            let binds: Vec<String> = (0..*k).map(|i| format!("f{i}")).collect();
                            let vals: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({b}) => ::serde::Value::Map(::std::vec![(\
                                     ::std::string::String::from(\"{vn}\"), \
                                     ::serde::Value::Seq(::std::vec![{v}]))]),",
                                b = binds.join(", "),
                                v = vals.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let binds: Vec<String> =
                                fields.iter().map(|f| f.name.clone()).collect();
                            let inner = serialize_fields_expr(name, fields, "");
                            format!(
                                "{name}::{vn} {{ {b} }} => ::serde::Value::Map(::std::vec![(\
                                     ::std::string::String::from(\"{vn}\"), {inner})]),",
                                b = binds.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}",
                arms = arms.join("\n")
            )
        }
    }
}

fn derive_deserialize_impl(input: &Input) -> String {
    match input {
        Input::Struct { name, fields } => {
            let inits = deserialize_fields_expr(name, fields, "v");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         if v.as_map().is_none() {{\n\
                             return ::std::result::Result::Err(::serde::DeError::expected(\"object\", \"{name}\", v));\n\
                         }}\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Input::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, VariantShape::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),",
                        vn = v.name
                    )
                })
                .collect();
            let map_arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        VariantShape::Unit => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),"
                        ),
                        VariantShape::Tuple(1) => format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_value(inner)?)),"
                        ),
                        VariantShape::Tuple(k) => {
                            let gets: Vec<String> = (0..*k)
                                .map(|i| format!("::serde::Deserialize::from_value(&seq[{i}])?"))
                                .collect();
                            format!(
                                "\"{vn}\" => {{\n\
                                     let seq = inner.as_seq().ok_or_else(|| \
                                         ::serde::DeError::expected(\"array\", \"{name}::{vn}\", inner))?;\n\
                                     if seq.len() != {k} {{\n\
                                         return ::std::result::Result::Err(::serde::DeError::new(\
                                             \"wrong tuple arity for {name}::{vn}\"));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vn}({g}))\n\
                                 }}",
                                g = gets.join(", ")
                            )
                        }
                        VariantShape::Struct(fields) => {
                            let inits = deserialize_fields_expr(&format!("{name}::{vn}"), fields, "inner");
                            format!(
                                "\"{vn}\" => {{\n\
                                     if inner.as_map().is_none() {{\n\
                                         return ::std::result::Result::Err(\
                                             ::serde::DeError::expected(\"object\", \"{name}::{vn}\", inner));\n\
                                     }}\n\
                                     ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n\
                                 }}"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match v {{\n\
                             ::serde::Value::Str(s) => match s.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
                             }},\n\
                             ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                                 let (k, inner) = &m[0];\n\
                                 match k.as_str() {{\n\
                                     {map_arms}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::unknown_variant(other, \"{name}\")),\n\
                                 }}\n\
                             }}\n\
                             _ => ::std::result::Result::Err(::serde::DeError::expected(\
                                 \"string or single-key object\", \"{name}\", v)),\n\
                         }}\n\
                     }}\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                map_arms = map_arms.join("\n")
            )
        }
    }
}

/// Derive `serde::Serialize` (vendored value-model flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    derive_serialize_impl(&parsed)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derive `serde::Deserialize` (vendored value-model flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    derive_deserialize_impl(&parsed)
        .parse()
        .expect("generated Deserialize impl parses")
}
