//! Offline vendored subset of `serde`.
//!
//! Real `serde` drives a visitor-based data model; this vendored stand-in
//! uses a concrete intermediate [`Value`] tree instead, which is all the
//! workspace needs (every serialisation goes through `serde_json`). The
//! derive macros ([`macro@Serialize`] / [`macro@Deserialize`]) come from the
//! sibling `serde_derive` crate and emit impls of the two traits below,
//! with external enum tagging and `#[serde(default)]` support, matching
//! the upstream JSON representation for the shapes this workspace uses.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing tree of serialised data (the JSON data model).
///
/// Maps preserve insertion order so derived serialisation is deterministic
/// (struct fields appear in declaration order).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative or small integers.
    Int(i64),
    /// Non-negative integers (also produced for every unsigned source).
    UInt(u64),
    /// Floating-point numbers.
    Float(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Seq(Vec<Value>),
    /// Objects, in insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object, if this is one.
    pub fn as_map(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow as an array, if this is one.
    pub fn as_seq(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Look up `key` in an object (linear scan; objects are tiny).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// A short human-readable name of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Deserialisation error: a message plus the offending context.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl DeError {
    /// Build an error from anything displayable.
    pub fn new(message: impl std::fmt::Display) -> Self {
        DeError {
            message: message.to_string(),
        }
    }

    /// "expected X while deserialising Y, found Z".
    pub fn expected(what: &str, ty: &str, found: &Value) -> Self {
        DeError::new(format!(
            "expected {what} while deserialising {ty}, found {}",
            found.kind()
        ))
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError::new(format!("missing field `{field}` in {ty}"))
    }

    /// An enum variant name was not recognised.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError::new(format!("unknown variant `{variant}` of {ty}"))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from the data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------- numbers

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: u64 = match *v {
                    Value::UInt(u) => u,
                    Value::Int(i) if i >= 0 => i as u64,
                    _ => return Err(DeError::expected("unsigned integer", stringify!($t), v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) if u <= i64::MAX as u64 => u as i64,
                    _ => return Err(DeError::expected("integer", stringify!($t), v)),
                };
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(i) => Ok(i as $t),
                    Value::UInt(u) => Ok(u as $t),
                    // Upstream serde_json writes non-finite floats as null;
                    // accept the same on the way back in.
                    Value::Null => Ok(<$t>::NAN),
                    _ => Err(DeError::expected("number", stringify!($t), v)),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

// ----------------------------------------------------------- other scalars

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::expected("bool", "bool", v)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", "String", v)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(DeError::expected("single-character string", "char", v)),
        }
    }
}

// -------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(DeError::expected("array", "Vec", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v
            .as_seq()
            .ok_or_else(|| DeError::expected("array", "fixed-size array", v))?;
        if items.len() != N {
            return Err(DeError::new(format!(
                "expected array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::new("array length mismatch"))
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for std::sync::Arc<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(std::sync::Arc::new)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_seq().ok_or_else(|| DeError::expected("array", "tuple", v))?;
                let expect = [$( $n, )+].len();
                if items.len() != expect {
                    return Err(DeError::new(format!(
                        "expected {expect}-tuple, found array of {}", items.len())));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i64::from_value(&(-7i64).to_value()), Ok(-7));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(bool::from_value(&true.to_value()), Ok(true));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn container_roundtrips() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        assert_eq!(Vec::<(u32, f64)>::from_value(&v.to_value()), Ok(v));
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()), Ok(None));
        assert_eq!(Option::<u8>::from_value(&Some(9u8).to_value()), Ok(Some(9)));
    }

    #[test]
    fn out_of_range_is_rejected() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
    }
}
