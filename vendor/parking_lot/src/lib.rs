//! Offline vendored `parking_lot` subset: a [`Mutex`] with the upstream
//! API shape (`lock()` returns the guard directly, no poisoning), backed by
//! `std::sync::Mutex`. A panicked holder does not poison the lock — the
//! next `lock()` simply proceeds, matching parking_lot semantics.

use std::sync::PoisonError;

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is available.
    ///
    /// Unlike `std`, this never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempt to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Get a mutable reference to the underlying data (no locking needed —
    /// the `&mut` receiver proves exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
    }

    #[test]
    fn survives_panicked_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must remain usable");
    }
}
