//! Offline vendored `crossbeam` subset: the [`channel`] module with an
//! unbounded MPMC channel built on `Mutex` + `Condvar`.
//!
//! Semantics mirror `crossbeam-channel` for the operations the workspace
//! uses: FIFO per channel, `send` never blocks, `recv` blocks until a
//! message arrives or every [`channel::Sender`] has been dropped
//! (disconnection), and `send` fails once every [`channel::Receiver`] is
//! gone.

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone; the
    /// unsent message is handed back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    impl<T: fmt::Debug> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::recv_timeout`] /
    /// [`Receiver::recv_deadline`]: either the wait expired with the queue
    /// still empty, or every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed before a message arrived.
        Timeout,
        /// The channel is empty and all senders have been dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty, disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    /// The sending half of an unbounded channel; clonable and shareable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; never blocks. Fails (returning the value) only
        /// when every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // disconnection.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue the next message, blocking until one arrives. Fails once
        /// the queue is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeue the next message, blocking at most `timeout`. Fails with
        /// [`RecvTimeoutError::Timeout`] once the wait expires, or with
        /// [`RecvTimeoutError::Disconnected`] when the queue is empty and
        /// every sender has been dropped.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            self.recv_deadline(Instant::now() + timeout)
        }

        /// [`Receiver::recv_timeout`] with an absolute deadline instead of a
        /// relative duration.
        pub fn recv_deadline(&self, deadline: Instant) -> Result<T, RecvTimeoutError> {
            let mut queue = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (q, _res) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = q;
            }
        }

        /// Dequeue without blocking; `None` when the queue is currently
        /// empty (regardless of sender liveness).
        pub fn try_recv(&self) -> Option<T> {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .pop_front()
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = (0..10).map(|_| rx.recv().unwrap()).collect();
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        }

        #[test]
        fn recv_errors_after_all_senders_drop() {
            let (tx, rx) = unbounded();
            tx.send(1u8).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_errors_after_receiver_drops() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7u8), Err(SendError(7)));
        }

        #[test]
        fn blocking_recv_wakes_on_send() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(99i64).unwrap();
            assert_eq!(h.join().unwrap(), 99);
        }

        #[test]
        fn recv_timeout_returns_queued_message_immediately() {
            let (tx, rx) = unbounded();
            tx.send(5u8).unwrap();
            assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(1)), Ok(5));
        }

        #[test]
        fn recv_timeout_times_out_on_empty_channel() {
            let (_tx, rx) = unbounded::<u8>();
            let t0 = std::time::Instant::now();
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(20)),
                Err(RecvTimeoutError::Timeout)
            );
            assert!(t0.elapsed() >= std::time::Duration::from_millis(20));
        }

        #[test]
        fn recv_timeout_reports_disconnection() {
            let (tx, rx) = unbounded::<u8>();
            drop(tx);
            assert_eq!(
                rx.recv_timeout(std::time::Duration::from_millis(1)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn recv_timeout_wakes_on_send() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || {
                rx.recv_timeout(std::time::Duration::from_secs(10)).unwrap()
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(77i32).unwrap();
            assert_eq!(h.join().unwrap(), 77);
        }

        #[test]
        fn cloned_senders_count_for_disconnection() {
            let (tx, rx) = unbounded::<u8>();
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(3).unwrap();
            drop(tx2);
            assert_eq!(rx.recv(), Ok(3));
            assert_eq!(rx.recv(), Err(RecvError));
        }
    }
}
